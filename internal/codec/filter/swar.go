package filter

// SWAR deblock kernels: the activity decision of the horizontal-edge
// loop filter runs 8 pixels per uint64. A horizontal block edge reads
// four contiguous rows (p1/p0/q0/q1), so the per-pixel predicate
// "a quantization step, not a real image edge" —
// d != 0 && d ≤ t && |p0−p1| ≤ t && |q1−q0| ≤ t — vectorizes into
// packed absolute differences and per-byte compares. Most of a
// reconstructed frame is flat (d == 0), so whole groups of 8 are
// usually skipped with two loads and a mask test; pixels whose lane is
// active get the exact scalar filterEdge, which keeps the SWAR path
// bit-identical to DeblockPlaneScalar (enforced by differential test).
// Vertical edges walk a column (stride-w accesses) and stay scalar.

import (
	"encoding/binary"
	"math/bits"
)

const (
	fswarMSB  = 0x8080808080808080 // per-byte sign bit
	fswarLow7 = 0x7f7f7f7f7f7f7f7f
	fswarOne  = 0x0101010101010101 // byte-replication multiplier
)

// fAbsDiffU64 is the packed per-byte |a-b| (same construction as
// motion's absDiffU64: wrapped difference with the borrow chain cut at
// byte boundaries, then conditional negation by the borrow mask).
func fAbsDiffU64(a, b uint64) uint64 {
	d := ((a | fswarMSB) - (b &^ fswarMSB)) ^ ((a ^ ^b) & fswarMSB)
	borrow := ((^a & b) | ((^a | b) & d)) & fswarMSB
	lt := borrow >> 7
	return (d ^ (lt * 0xff)) + lt
}

// geMaskU64 returns 0x80 in each byte where a >= b (per-byte unsigned):
// the complement of the subtraction borrow-out of a-b.
func geMaskU64(a, b uint64) uint64 {
	d := ((a | fswarMSB) - (b &^ fswarMSB)) ^ ((a ^ ^b) & fswarMSB)
	borrow := ((^a & b) | ((^a | b) & d)) & fswarMSB
	return ^borrow & fswarMSB
}

// nzMaskU64 returns 0x80 in each nonzero byte: adding 0x7f to the low 7
// bits carries into the MSB iff any low bit is set; OR-ing x itself
// catches bytes whose only set bit is the MSB.
func nzMaskU64(x uint64) uint64 {
	return (((x & fswarLow7) + fswarLow7) | x) & fswarMSB
}

// horizEdgeActiveMask computes the filter-activity mask for 8 edge
// pixels: 0x80 in each byte lane where the scalar filterEdge would
// modify the pixel pair.
func horizEdgeActiveMask(p1, p0, q0, q1, tv uint64) uint64 {
	d := fAbsDiffU64(q0, p0)
	m := nzMaskU64(d) & geMaskU64(tv, d)
	m &= geMaskU64(tv, fAbsDiffU64(p0, p1))
	m &= geMaskU64(tv, fAbsDiffU64(q1, q0))
	return m
}

// deblockHorizRow filters one horizontal block edge across columns
// [0, w) of the four rows straddling it, writing p0r and q0r in place.
// Pixels along the edge are independent (each touches only its own
// column), so the SWAR mask can batch the skip decision.
func deblockHorizRow(p1r, p0r, q0r, q1r []uint8, w int, thresh int32) {
	// Pixel differences never exceed 255, so clamping the packed
	// threshold to 255 preserves every comparison exactly.
	t8 := thresh
	if t8 > 255 {
		t8 = 255
	}
	tv := uint64(t8) * fswarOne
	x := 0
	for ; x+8 <= w; x += 8 {
		m := horizEdgeActiveMask(
			binary.LittleEndian.Uint64(p1r[x:]),
			binary.LittleEndian.Uint64(p0r[x:]),
			binary.LittleEndian.Uint64(q0r[x:]),
			binary.LittleEndian.Uint64(q1r[x:]), tv)
		for m != 0 {
			i := x + bits.TrailingZeros64(m)>>3
			p1 := int32(p1r[i])
			p0 := int32(p0r[i])
			q0 := int32(q0r[i])
			q1 := int32(q1r[i])
			filterEdge(&p1, &p0, &q0, &q1, thresh)
			p0r[i] = uint8(p0)
			q0r[i] = uint8(q0)
			m &= m - 1
		}
	}
	for ; x < w; x++ {
		p1 := int32(p1r[x])
		p0 := int32(p0r[x])
		q0 := int32(q0r[x])
		q1 := int32(q1r[x])
		filterEdge(&p1, &p0, &q0, &q1, thresh)
		p0r[x] = uint8(p0)
		q0r[x] = uint8(q0)
	}
}
