package filter

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"openvcu/internal/video"
)

// runConcurrent executes every task in its own goroutine — the
// adversarial runner: if stripes overlapped, -race would catch it and
// the byte-compare would flake.
func runConcurrent(tasks []func()) {
	var wg sync.WaitGroup
	wg.Add(len(tasks))
	for _, t := range tasks {
		go func() {
			defer wg.Done()
			t()
		}()
	}
	wg.Wait()
}

func randFrame(rng *rand.Rand, w, h int) *video.Frame {
	f := video.NewFrame(w, h)
	for i := range f.Y {
		f.Y[i] = uint8(rng.Intn(256))
	}
	for i := range f.U {
		f.U[i] = uint8(rng.Intn(256))
		f.V[i] = uint8(rng.Intn(256))
	}
	return f
}

// blockyFrame makes a frame with visible block-grid steps so the
// deblock filter actually fires on many edges.
func blockyFrame(rng *rand.Rand, w, h, bs int) *video.Frame {
	f := video.NewFrame(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			base := uint8(((x/bs)*7 + (y/bs)*11) % 200)
			f.Y[y*w+x] = base + uint8(rng.Intn(3))
		}
	}
	cw, ch := video.ChromaDims(w, h)
	for y := 0; y < ch; y++ {
		for x := 0; x < cw; x++ {
			f.U[y*cw+x] = uint8(((x / 4) * 13) % 250)
			f.V[y*cw+x] = uint8(((y / 4) * 17) % 250)
		}
	}
	return f
}

func TestSwarMaskPrimitivesExhaustive(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			va := uint64(a) * fswarOne
			vb := uint64(b) * fswarOne
			wantAbs := a - b
			if wantAbs < 0 {
				wantAbs = -wantAbs
			}
			if got := fAbsDiffU64(va, vb); byte(got) != byte(wantAbs) || got != uint64(byte(wantAbs))*fswarOne {
				t.Fatalf("fAbsDiffU64(%d,%d) = %#x, want bytes %d", a, b, got, wantAbs)
			}
			wantGE := uint64(0)
			if a >= b {
				wantGE = fswarMSB
			}
			if got := geMaskU64(va, vb); got != wantGE {
				t.Fatalf("geMaskU64(%d,%d) = %#x, want %#x", a, b, got, wantGE)
			}
		}
		wantNZ := uint64(0)
		if a != 0 {
			wantNZ = fswarMSB
		}
		if got := nzMaskU64(uint64(a) * fswarOne); got != wantNZ {
			t.Fatalf("nzMaskU64(%d) = %#x, want %#x", a, got, wantNZ)
		}
	}
}

// TestDeblockPlaneMatchesScalar is the SWAR/range-split differential
// gate: random and blocky planes, widths off the 8-byte grid, strengths
// including one past the packed-threshold clamp.
func TestDeblockPlaneMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		w := 16 + rng.Intn(90) // frequently not a multiple of 8
		h := 16 + rng.Intn(90)
		bs := []int{4, 8, 16}[rng.Intn(3)]
		strength := []int{1, 3, 8, 20, 300}[rng.Intn(5)]
		pix := make([]uint8, w*h)
		if trial%2 == 0 {
			for i := range pix {
				pix[i] = uint8(rng.Intn(256))
			}
		} else {
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					pix[y*w+x] = uint8(((x/bs)*9 + (y/bs)*5) % 256)
				}
			}
		}
		want := append([]uint8(nil), pix...)
		DeblockPlaneScalar(want, w, h, bs, strength)
		got := append([]uint8(nil), pix...)
		DeblockPlane(got, w, h, bs, strength)
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d (w=%d h=%d bs=%d s=%d): SWAR deblock diverged from scalar",
				trial, w, h, bs, strength)
		}
	}
}

func TestDeblockParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, dims := range [][2]int{{64, 64}, {176, 144}, {200, 130}} {
		seq := blockyFrame(rng, dims[0], dims[1], 8)
		par := seq.Clone()
		Deblock(seq, 8, 6)
		DeblockParallel(par, 8, 6, runConcurrent)
		if !bytes.Equal(seq.Y, par.Y) || !bytes.Equal(seq.U, par.U) || !bytes.Equal(seq.V, par.V) {
			t.Fatalf("%dx%d: parallel deblock diverged from sequential", dims[0], dims[1])
		}
	}
}

func TestRestoreParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for widx := 1; widx < 4; widx++ {
		seq := randFrame(rng, 120, 90)
		par := seq.Clone()
		Restore(seq, widx)
		RestoreParallel(par, widx, runConcurrent)
		if !bytes.Equal(seq.Y, par.Y) || !bytes.Equal(seq.U, par.U) || !bytes.Equal(seq.V, par.V) {
			t.Fatalf("weight %d: parallel restore diverged from sequential", widx)
		}
	}
}

func TestBestRestorationWeightParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 10; trial++ {
		recon := randFrame(rng, 130, 100)
		src := recon.Clone()
		// noisy recon vs smooth src biases the search off weight 0
		for i := range src.Y {
			src.Y[i] = uint8((int(src.Y[i]) + 128) / 2)
		}
		want := BestRestorationWeight(recon, src)
		got := BestRestorationWeightParallel(recon, src, runConcurrent)
		if got != want {
			t.Fatalf("trial %d: parallel weight %d != sequential %d", trial, got, want)
		}
	}
}
