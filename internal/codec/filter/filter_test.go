package filter

import (
	"testing"

	"openvcu/internal/video"
)

func TestDeblockSmoothsBlockEdge(t *testing.T) {
	// Two flat half-planes split on a block boundary with a small step:
	// the filter should shrink the step.
	w, h := 32, 32
	pix := make([]uint8, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x < 16 {
				pix[y*w+x] = 100
			} else {
				pix[y*w+x] = 106
			}
		}
	}
	DeblockPlane(pix, w, h, 16, 8)
	stepBefore := 6
	stepAfter := int(pix[16]) - int(pix[15])
	if stepAfter >= stepBefore {
		t.Fatalf("edge step not reduced: before %d after %d", stepBefore, stepAfter)
	}
}

func TestDeblockPreservesRealEdges(t *testing.T) {
	// A large step (a real image edge) must pass through unchanged.
	w, h := 32, 32
	pix := make([]uint8, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x < 16 {
				pix[y*w+x] = 50
			} else {
				pix[y*w+x] = 200
			}
		}
	}
	orig := append([]uint8(nil), pix...)
	DeblockPlane(pix, w, h, 16, 8)
	for i := range pix {
		if pix[i] != orig[i] {
			t.Fatalf("real edge modified at %d: %d -> %d", i, orig[i], pix[i])
		}
	}
}

func TestDeblockZeroStrengthIsNoop(t *testing.T) {
	f := video.NewSource(video.SourceConfig{Width: 64, Height: 64, Seed: 1, Detail: 0.8}).Frame(0)
	orig := f.Clone()
	Deblock(f, 16, 0)
	if video.MSE(f.Y, orig.Y) != 0 {
		t.Fatal("strength-0 deblock modified pixels")
	}
}

func TestTemporalFilterReducesNoise(t *testing.T) {
	// Clean static scene + temporal noise: the filtered center frame must
	// be closer to the clean scene than the noisy center frame is.
	clean := video.NewSource(video.SourceConfig{Width: 64, Height: 64, Seed: 7, Detail: 0.4})
	noisy := video.NewSource(video.SourceConfig{Width: 64, Height: 64, Seed: 7, Detail: 0.4, Noise: 8})
	frames := noisy.Frames(3)
	filtered := TemporalFilter(frames, 1, DefaultTemporalFilter)
	ref := clean.Frame(1)
	noisyMSE := video.MSE(frames[1].Y, ref.Y)
	filteredMSE := video.MSE(filtered.Y, ref.Y)
	if filteredMSE >= noisyMSE {
		t.Fatalf("temporal filter did not denoise: noisy %.2f filtered %.2f", noisyMSE, filteredMSE)
	}
}

func TestTemporalFilterTracksMotion(t *testing.T) {
	// With panning content the filter must motion-align, not just average:
	// output should stay close to the center frame, not become a blur.
	src := video.NewSource(video.SourceConfig{Width: 96, Height: 64, Seed: 3, Detail: 0.6, Motion: 3})
	frames := src.Frames(3)
	filtered := TemporalFilter(frames, 1, DefaultTemporalFilter)
	mse := video.MSE(filtered.Y, frames[1].Y)
	if mse > 30 {
		t.Fatalf("motion-compensated filter drifted from center frame: MSE %.2f", mse)
	}
}

func TestTemporalFilterStrengthZero(t *testing.T) {
	src := video.NewSource(video.SourceConfig{Width: 32, Height: 32, Seed: 2, Detail: 0.5, Noise: 5})
	frames := src.Frames(3)
	out := TemporalFilter(frames, 1, TemporalFilterConfig{BlockSize: 16, Strength: 0})
	if video.MSE(out.Y, frames[1].Y) != 0 {
		t.Fatal("strength-0 temporal filter modified the center frame")
	}
}

func TestRestoreWeightZeroIsIdentity(t *testing.T) {
	f := video.NewSource(video.SourceConfig{Width: 48, Height: 48, Seed: 9, Detail: 0.8}).Frame(0)
	orig := f.Clone()
	Restore(f, 0)
	if video.MSE(f.Y, orig.Y) != 0 {
		t.Fatal("weight-0 restoration modified pixels")
	}
}

func TestRestoreSmoothsTowardBox(t *testing.T) {
	// Higher weights pull pixels toward the local mean: variance of a
	// noisy plane must drop monotonically with weight.
	src := video.NewSource(video.SourceConfig{Width: 64, Height: 64, Seed: 10, Detail: 0.3, Noise: 20}).Frame(0)
	variance := func(f *video.Frame) float64 {
		var sum, sum2 float64
		for _, p := range f.Y {
			sum += float64(p)
			sum2 += float64(p) * float64(p)
		}
		n := float64(len(f.Y))
		m := sum / n
		return sum2/n - m*m
	}
	prev := variance(src)
	for w := 1; w < 4; w++ {
		f := src.Clone()
		Restore(f, w)
		v := variance(f)
		if v >= prev {
			t.Fatalf("weight %d did not reduce variance: %.1f -> %.1f", w, prev, v)
		}
		prev = v
	}
}

func TestBestRestorationWeightPicksDenoiser(t *testing.T) {
	// recon = src + noise: blending toward the smoothed recon gets closer
	// to the clean source, so the best weight must be nonzero.
	clean := video.NewSource(video.SourceConfig{Width: 64, Height: 64, Seed: 11, Detail: 0.2}).Frame(0)
	noisy := video.NewSource(video.SourceConfig{Width: 64, Height: 64, Seed: 11, Detail: 0.2, Noise: 15}).Frame(0)
	if w := BestRestorationWeight(noisy, clean); w == 0 {
		t.Fatal("restoration search found no benefit on noisy recon")
	}
	// And on a perfect recon the best weight must be zero.
	if w := BestRestorationWeight(clean.Clone(), clean); w != 0 {
		t.Fatalf("perfect recon picked weight %d", w)
	}
}

func TestTemporalFilterIterativeApplication(t *testing.T) {
	// §3.2: "the temporal filter can be iteratively applied to filter
	// more than 3 frames" — a second pass must denoise further.
	clean := video.NewSource(video.SourceConfig{Width: 64, Height: 64, Seed: 12, Detail: 0.4})
	noisy := video.NewSource(video.SourceConfig{Width: 64, Height: 64, Seed: 12, Detail: 0.4, Noise: 12})
	frames := noisy.Frames(5)
	once := TemporalFilter(frames[1:4], 1, DefaultTemporalFilter)
	// Iterate: filter three single-pass outputs.
	stage := []*video.Frame{
		TemporalFilter(frames[0:3], 1, DefaultTemporalFilter),
		once,
		TemporalFilter(frames[2:5], 1, DefaultTemporalFilter),
	}
	twice := TemporalFilter(stage, 1, DefaultTemporalFilter)
	ref := clean.Frame(2)
	onceMSE := video.MSE(once.Y, ref.Y)
	twiceMSE := video.MSE(twice.Y, ref.Y)
	if twiceMSE >= onceMSE {
		t.Fatalf("iterative filtering did not denoise further: %.2f -> %.2f", onceMSE, twiceMSE)
	}
}
