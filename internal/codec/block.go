package codec

import (
	"openvcu/internal/codec/entropy"
	"openvcu/internal/codec/motion"
	"openvcu/internal/codec/predict"
	"openvcu/internal/codec/transform"
	"openvcu/internal/video"
)

// blockChoice is one prediction decision for a leaf block.
type blockChoice struct {
	inter     bool
	skip      bool // inter, predicted MV, no residual
	intraMode predict.IntraMode
	compound  bool // average LAST and GOLDEN predictions
	ref       int
	mv        motion.MV
}

// mvGridSize is the granularity of the motion-vector context grid.
const mvGridSize = 16

// frameShared is the per-frame state common to encoding and decoding:
// the reconstruction target, reference frames, and the motion-vector
// context grid. Both sides must mutate it identically.
type frameShared struct {
	profile Profile
	pw, ph  int
	// vw, vh bound the coded region: the display dimensions rounded up
	// to the minimum partition. Blocks beyond it carry no bits (see
	// blockKind).
	vw, vh int
	// tileX0, tileX1 bound this tile column in pixels. Prediction state
	// (intra neighbors, MV contexts) never crosses the left tile edge,
	// which is what makes tiles independently codable.
	tileX0, tileX1 int
	qp             int
	keyframe       bool

	recon    *video.Frame
	refs     [numRefSlots]*video.Frame
	refValid [numRefSlots]bool

	model *entropy.Model

	gw, gh  int
	mvGrid  []motion.MV
	refGrid []int8 // reference slot, -1 = intra or unset

	// mc owns the motion-kernel scratch buffers. frameShared is
	// single-goroutine state (one per tile), so the scratch is never
	// shared across goroutines.
	mc motion.Scratch
	// nbBuf backs intra neighbor gathers, so prediction allocates
	// nothing per block.
	nbBuf predict.NeighborBuf
}

// newFrameShared builds per-frame coding state. carried, when non-nil and
// the frame is not a keyframe, continues an adaptive entropy model from
// the previous frame (VP9-class cross-frame probability adaptation);
// keyframes and non-adaptive profiles always start fresh.
func newFrameShared(profile Profile, pw, ph, dispW, dispH, qp int, keyframe bool,
	refs [numRefSlots]*video.Frame, refValid [numRefSlots]bool, recon *video.Frame,
	carried *entropy.Model) *frameShared {
	model := carried
	if model == nil || keyframe || !profile.Adaptive() {
		model = entropy.NewModel(profile.Adaptive())
	}
	gw, gh := pw/mvGridSize, ph/mvGridSize
	fs := &frameShared{
		profile: profile, pw: pw, ph: ph,
		vw:     padDim(dispW, profile.MinPartition()),
		vh:     padDim(dispH, profile.MinPartition()),
		tileX0: 0, tileX1: pw,
		qp: qp, keyframe: keyframe,
		recon: recon, refs: refs, refValid: refValid,
		model: model,
		gw:    gw, gh: gh,
		mvGrid:  make([]motion.MV, gw*gh),
		refGrid: make([]int8, gw*gh),
	}
	for i := range fs.refGrid {
		fs.refGrid[i] = -1
	}
	return fs
}

// resetForFrame re-points the per-frame fields and clears the context
// grids, reusing the grid and scratch allocations. Dimension-derived
// fields (pw, ph, vw, vh, gw, gh) are invariant for the life of an
// encoder and stay untouched.
func (fs *frameShared) resetForFrame(qp int, keyframe bool, refs [numRefSlots]*video.Frame,
	refValid [numRefSlots]bool, recon *video.Frame, model *entropy.Model, tileX0, tileX1 int) {
	fs.qp, fs.keyframe = qp, keyframe
	fs.refs, fs.refValid = refs, refValid
	fs.recon = recon
	fs.model = model
	fs.tileX0, fs.tileX1 = tileX0, tileX1
	for i := range fs.mvGrid {
		fs.mvGrid[i] = motion.MV{}
	}
	for i := range fs.refGrid {
		fs.refGrid[i] = -1
	}
}

// blockKind classifies a block against the coded-region boundary. Both
// encoder and decoder derive it from the frame header, so none of it is
// signaled:
//
//   - blockOutside: entirely beyond the display region — zero bits; the
//     reconstruction is deterministic edge extension (reconOutside).
//   - blockImplicitSplit: straddles the boundary with room to split — the
//     split is implied, no partition flag is coded (VP9's boundary
//     behavior).
//   - blockNormal: coded normally.
type blockKindT int

const (
	blockNormal blockKindT = iota
	blockImplicitSplit
	blockOutside
)

func (fs *frameShared) blockKind(x, y, s int) blockKindT {
	if x >= fs.vw || y >= fs.vh {
		return blockOutside
	}
	if s > fs.profile.MinPartition() && (x+s > fs.vw || y+s > fs.vh) {
		return blockImplicitSplit
	}
	return blockNormal
}

// reconOutside reconstructs an uncoded out-of-region block by clamped
// copy from the nearest coded pixels. Raster coding order guarantees the
// source pixels are already reconstructed, so encoder and decoder produce
// identical padding — required because motion compensation and intra
// neighbors may read these pixels through reference frames.
func (fs *frameShared) reconOutside(x, y, s int) {
	fillClamped := func(plane []uint8, stride, px, py, ps, limW, limH int) {
		for r := 0; r < ps; r++ {
			sy := py + r
			cy := sy
			if cy > limH-1 {
				cy = limH - 1
			}
			for c := 0; c < ps; c++ {
				sx := px + c
				cx := sx
				if cx > limW-1 {
					cx = limW - 1
				}
				plane[sy*stride+sx] = plane[cy*stride+cx]
			}
		}
	}
	fillClamped(fs.recon.Y, fs.pw, x, y, s, fs.vw, fs.vh)
	cw, _ := video.ChromaDims(fs.pw, fs.ph)
	fillClamped(fs.recon.U, cw, x/2, y/2, s/2, fs.vw/2, fs.vh/2)
	fillClamped(fs.recon.V, cw, x/2, y/2, s/2, fs.vw/2, fs.vh/2)
}

// compoundAvailable reports whether compound prediction can be coded in
// this frame. Encoder and decoder derive it from the same state.
func (fs *frameShared) compoundAvailable() bool {
	return fs.profile.Compound() && fs.refValid[RefLast] && fs.refValid[RefGolden]
}

// predMV returns the motion-vector prediction for the block at (x, y).
// Neighbor cells outside this tile column are unavailable.
func (fs *frameShared) predMV(x, y int) motion.MV {
	gx, gy := x/mvGridSize, y/mvGridSize
	tg0, tg1 := fs.tileX0/mvGridSize, fs.tileX1/mvGridSize
	var left, above, ar motion.MV
	var hasL, hasA, hasAR bool
	if gx > tg0 && fs.refGrid[gy*fs.gw+gx-1] >= 0 {
		left = fs.mvGrid[gy*fs.gw+gx-1]
		hasL = true
	}
	if gy > 0 {
		if fs.refGrid[(gy-1)*fs.gw+gx] >= 0 {
			above = fs.mvGrid[(gy-1)*fs.gw+gx]
			hasA = true
		}
		if gx+1 < tg1 && fs.refGrid[(gy-1)*fs.gw+gx+1] >= 0 {
			ar = fs.mvGrid[(gy-1)*fs.gw+gx+1]
			hasAR = true
		}
	}
	return motion.PredictMV(left, above, ar, hasL, hasA, hasAR)
}

// gatherTileNeighbors collects intra neighbors with the left edge clipped
// at the tile boundary (the bounded gather never reads across it — the
// neighboring tile may be encoding concurrently).
func (fs *frameShared) gatherTileNeighbors(plane []uint8, w, h, x, y, n, tx0 int) predict.Neighbors {
	return predict.GatherNeighborsBounded(plane, w, h, x, y, n, tx0, &fs.nbBuf)
}

// setGrid records the decision for all grid cells covered by the block.
func (fs *frameShared) setGrid(x, y, s int, mv motion.MV, ref int8) {
	for gy := y / mvGridSize; gy < (y+s)/mvGridSize && gy < fs.gh; gy++ {
		for gx := x / mvGridSize; gx < (x+s)/mvGridSize && gx < fs.gw; gx++ {
			fs.mvGrid[gy*fs.gw+gx] = mv
			fs.refGrid[gy*fs.gw+gx] = ref
		}
	}
}

// lumaTx returns the luma transform size for a leaf of size s.
func (fs *frameShared) lumaTx(s int) int {
	tx := fs.profile.MaxTransform()
	if s < tx {
		tx = s
	}
	return tx
}

// chromaTx returns the chroma transform size for a leaf of size s.
func (fs *frameShared) chromaTx(s int) int {
	tx := s / 2
	if tx > fs.profile.MaxTransform() {
		tx = fs.profile.MaxTransform()
	}
	if tx < 4 {
		tx = 4
	}
	return tx
}

// predictLuma fills dst (s×s) with the prediction for the choice.
func (fs *frameShared) predictLuma(ch blockChoice, x, y, s int, dst []uint8) {
	if ch.inter {
		sharp := fs.profile.SharpFilter()
		if ch.compound {
			lastRef := motion.Ref{Pix: fs.refs[RefLast].Y, W: fs.pw, H: fs.ph, Sharp: sharp}
			goldRef := motion.Ref{Pix: fs.refs[RefGolden].Y, W: fs.pw, H: fs.ph, Sharp: sharp}
			motion.SampleCompound(lastRef, ch.mv, goldRef, ch.mv, x, y, dst, s, &fs.mc)
			return
		}
		ref := motion.Ref{Pix: fs.refs[ch.ref].Y, W: fs.pw, H: fs.ph, Sharp: sharp}
		motion.SampleBlock(ref, x, y, ch.mv, dst, s, &fs.mc)
		return
	}
	nb := fs.gatherTileNeighbors(fs.recon.Y, fs.pw, fs.ph, x, y, s, fs.tileX0)
	predict.Predict(ch.intraMode, nb, dst, s)
}

// predictChromaPlane fills dst (cs×cs) for one chroma plane.
func (fs *frameShared) predictChromaPlane(ch blockChoice, plane video.Plane, x, y, s int, dst []uint8) {
	cs := s / 2
	cw, chh := video.ChromaDims(fs.pw, fs.ph)
	cx, cy := x/2, y/2
	cmv := motion.MV{X: ch.mv.X / 2, Y: ch.mv.Y / 2}
	if ch.inter {
		sharp := fs.profile.SharpFilter()
		pick := func(f *video.Frame) []uint8 {
			if plane == video.PlaneU {
				return f.U
			}
			return f.V
		}
		if ch.compound {
			motion.SampleCompound(
				motion.Ref{Pix: pick(fs.refs[RefLast]), W: cw, H: chh, Sharp: sharp}, cmv,
				motion.Ref{Pix: pick(fs.refs[RefGolden]), W: cw, H: chh, Sharp: sharp}, cmv,
				cx, cy, dst, cs, &fs.mc)
			return
		}
		ref := motion.Ref{Pix: pick(fs.refs[ch.ref]), W: cw, H: chh, Sharp: sharp}
		motion.SampleBlock(ref, cx, cy, cmv, dst, cs, &fs.mc)
		return
	}
	var reconPlane []uint8
	if plane == video.PlaneU {
		reconPlane = fs.recon.U
	} else {
		reconPlane = fs.recon.V
	}
	nb := fs.gatherTileNeighbors(reconPlane, cw, chh, cx, cy, cs, fs.tileX0/2)
	predict.Predict(ch.intraMode, nb, dst, cs)
}

// storeBlock writes an s×s pixel block into a plane.
func storeBlock(plane []uint8, stride, x, y int, blk []uint8, s int) {
	for r := 0; r < s; r++ {
		copy(plane[(y+r)*stride+x:(y+r)*stride+x+s], blk[r*s:(r+1)*s])
	}
}

// applyTxBlock reconstructs one transform block: dequantize the scanned
// levels, inverse transform, add the prediction (pred is the leaf-sized
// prediction buffer with stride predStride, offset to the tx block), and
// write the clamped result into the plane at (x, y). It is the single
// reconstruction path shared by encoder and decoder, guaranteeing their
// reference frames stay bit-identical.
func applyTxBlock(scanned []int32, n, qp int, pred []uint8, predStride, predOff int,
	plane []uint8, stride, x, y int) {
	var blkArr [transform.MaxSize * transform.MaxSize]int32
	blk := blkArr[:n*n]
	transform.ScanInverse(scanned, blk, n)
	transform.Dequantize(blk, qp)
	transform.Inverse(blk, n)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			v := int32(pred[predOff+r*predStride+c]) + blk[r*n+c]
			plane[(y+r)*stride+x+c] = video.ClampU8(v)
		}
	}
}

// sseRegion accumulates squared error between a source region and a
// block through the SWAR SSE kernel (motion.PlanarSSE, differential-
// tested against its scalar reference) — this is the RDO distortion
// accumulation on the evalChoice hot path.
func sseRegion(src []uint8, stride, x, y int, blk []uint8, n int) int64 {
	return motion.PlanarSSE(src[y*stride+x:], stride, blk, n, n)
}

// ssePlanes accumulates squared error between two plane regions.
func ssePlanes(a []uint8, b []uint8, stride, x, y, n int) int64 {
	off := y*stride + x
	return motion.PlanarSSE(a[off:], stride, b[off:], stride, n)
}
