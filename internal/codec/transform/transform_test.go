package transform

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestForwardInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range Sizes {
		for trial := 0; trial < 20; trial++ {
			block := make([]int32, n*n)
			orig := make([]int32, n*n)
			for i := range block {
				block[i] = int32(rng.Intn(511) - 255)
				orig[i] = block[i]
			}
			Forward(block, n)
			Inverse(block, n)
			for i := range block {
				d := block[i] - orig[i]
				if d < -2 || d > 2 {
					t.Fatalf("n=%d trial=%d idx=%d: %d -> %d (err %d)",
						n, trial, i, orig[i], block[i], d)
				}
			}
		}
	}
}

func TestDCCoefficient(t *testing.T) {
	// A constant block must concentrate all energy in the DC coefficient.
	for _, n := range Sizes {
		block := make([]int32, n*n)
		for i := range block {
			block[i] = 100
		}
		Forward(block, n)
		// DC = mean * n (orthonormal scaling): 100*n
		wantDC := int32(100 * n)
		if d := block[0] - wantDC; d < -2 || d > 2 {
			t.Errorf("n=%d DC=%d want ~%d", n, block[0], wantDC)
		}
		for i := 1; i < n*n; i++ {
			if block[i] < -1 || block[i] > 1 {
				t.Errorf("n=%d AC[%d]=%d, want ~0", n, i, block[i])
			}
		}
	}
}

func TestEnergyPreservation(t *testing.T) {
	// Orthonormal transform preserves energy (Parseval) within rounding.
	rng := rand.New(rand.NewSource(2))
	for _, n := range Sizes {
		block := make([]int32, n*n)
		var inEnergy int64
		for i := range block {
			block[i] = int32(rng.Intn(201) - 100)
			inEnergy += int64(block[i]) * int64(block[i])
		}
		Forward(block, n)
		var outEnergy int64
		for _, c := range block {
			outEnergy += int64(c) * int64(c)
		}
		ratio := float64(outEnergy) / float64(inEnergy)
		if ratio < 0.98 || ratio > 1.02 {
			t.Errorf("n=%d energy ratio %.4f", n, ratio)
		}
	}
}

func TestQuantizeDequantizeError(t *testing.T) {
	// Reconstruction error must be bounded by the step size.
	for _, qp := range []int{0, 10, 20, 35, 50, 63} {
		step := QStep(qp)
		coeffs := []int32{0, 5, -5, 100, -100, 1000, -1000, 30000}
		levels := append([]int32(nil), coeffs...)
		Quantize(levels, qp, 4)
		Dequantize(levels, qp)
		for i := range coeffs {
			err := levels[i] - coeffs[i]
			if err < 0 {
				err = -err
			}
			if err > step/16+1 {
				t.Errorf("qp=%d coeff=%d recon=%d err %d > step %d",
					qp, coeffs[i], levels[i], err, step/16)
			}
		}
	}
}

func TestQStepDoublesEverySix(t *testing.T) {
	for qp := 0; qp+6 <= MaxQP; qp++ {
		lo, hi := QStepFloat(qp), QStepFloat(qp+6)
		ratio := hi / lo
		if ratio < 1.85 || ratio > 2.15 {
			t.Errorf("QStep(%d+6)/QStep(%d) = %.3f, want ~2", qp, qp, ratio)
		}
	}
}

func TestDeadzoneBiasesTowardZero(t *testing.T) {
	qp := 30
	c := []int32{QStep(qp) / 32 * 10} // below half step in magnitude terms
	nearest := append([]int32(nil), c...)
	Quantize(nearest, qp, 4)
	dz := append([]int32(nil), c...)
	Quantize(dz, qp, 1)
	if abs32(dz[0]) > abs32(nearest[0]) {
		t.Errorf("deadzone quantizer produced larger level %d > %d", dz[0], nearest[0])
	}
}

func abs32(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}

func TestZigzagIsPermutation(t *testing.T) {
	for _, n := range Sizes {
		scan := Zigzag(n)
		if len(scan) != n*n {
			t.Fatalf("n=%d scan length %d", n, len(scan))
		}
		seen := make([]bool, n*n)
		for _, p := range scan {
			if p < 0 || p >= n*n || seen[p] {
				t.Fatalf("n=%d invalid or duplicate position %d", n, p)
			}
			seen[p] = true
		}
		// starts at DC, second element is a direct neighbor of DC
		if scan[0] != 0 {
			t.Fatalf("n=%d scan must start at DC", n)
		}
		if scan[1] != 1 && scan[1] != n {
			t.Fatalf("n=%d second scan position %d not adjacent to DC", n, scan[1])
		}
	}
}

func TestScanRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := Sizes[rng.Intn(len(Sizes))]
		block := make([]int32, n*n)
		for i := range block {
			block[i] = rng.Int31n(2000) - 1000
		}
		scanned := make([]int32, n*n)
		back := make([]int32, n*n)
		ScanForward(block, scanned, n)
		ScanInverse(scanned, back, n)
		for i := range block {
			if block[i] != back[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestZigzagOrdersLowFrequencyFirst(t *testing.T) {
	// The sum of (row+col) must be non-decreasing along the scan.
	for _, n := range Sizes {
		scan := Zigzag(n)
		prev := -1
		for _, p := range scan {
			s := p/n + p%n
			if s < prev-0 && s != prev {
				if s < prev {
					t.Fatalf("n=%d scan not by anti-diagonal", n)
				}
			}
			if s > prev {
				prev = s
			}
		}
	}
}

func BenchmarkForward8(b *testing.B) {
	block := make([]int32, 64)
	for i := range block {
		block[i] = int32(i%17 - 8)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tmp := append([]int32(nil), block...)
		Forward(tmp, 8)
	}
}

func BenchmarkForward32(b *testing.B) {
	block := make([]int32, 1024)
	for i := range block {
		block[i] = int32(i%29 - 14)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tmp := append([]int32(nil), block...)
		Forward(tmp, 32)
	}
}
