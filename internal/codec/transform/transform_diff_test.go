package transform

import (
	"math/rand"
	"testing"
)

// The fast transform/quantize kernels must be bit-identical to their
// retained scalar references — these tests are the differential gate.

func TestBasisSymmetryHolds(t *testing.T) {
	// The butterfly fast paths depend on the rounded basis keeping the
	// DCT mirror symmetry; if this ever fails, Forward/Inverse silently
	// fall back to scalar, which would be a performance bug worth seeing.
	for _, n := range Sizes {
		if !basisSymmetric[n] {
			t.Errorf("n=%d: integer basis lost mirror symmetry; butterfly disabled", n)
		}
	}
}

func TestForwardMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range Sizes {
		for trial := 0; trial < 200; trial++ {
			block := make([]int32, n*n)
			switch trial % 4 {
			case 0: // full-range random residual
				for i := range block {
					block[i] = int32(rng.Intn(511) - 255)
				}
			case 1: // extreme values stress accumulator bounds
				for i := range block {
					block[i] = 255
					if rng.Intn(2) == 0 {
						block[i] = -255
					}
				}
			case 2: // sparse
				for k := 0; k < 3; k++ {
					block[rng.Intn(n*n)] = int32(rng.Intn(511) - 255)
				}
			case 3: // structured gradient
				for i := range block {
					block[i] = int32((i%n)*8 - (i/n)*8)
				}
			}
			want := append([]int32(nil), block...)
			ForwardScalar(want, n)
			got := append([]int32(nil), block...)
			Forward(got, n)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d trial=%d idx=%d: fast=%d scalar=%d",
						n, trial, i, got[i], want[i])
				}
			}
		}
	}
}

func TestInverseMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range Sizes {
		for trial := 0; trial < 200; trial++ {
			block := make([]int32, n*n)
			switch trial % 4 {
			case 0: // dense coefficients
				for i := range block {
					block[i] = int32(rng.Intn(2001) - 1000)
				}
			case 1: // realistic post-quantization sparsity
				for k := 0; k < 1+rng.Intn(6); k++ {
					block[rng.Intn(n*n)] = int32(rng.Intn(201) - 100)
				}
			case 2: // DC only
				block[0] = int32(rng.Intn(8001) - 4000)
			case 3: // all zero (zero-skip path)
			}
			want := append([]int32(nil), block...)
			InverseScalar(want, n)
			got := append([]int32(nil), block...)
			Inverse(got, n)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d trial=%d idx=%d: fast=%d scalar=%d",
						n, trial, i, got[i], want[i])
				}
			}
		}
	}
}

func TestQuantizeMatchesScalarExhaustive(t *testing.T) {
	// Every QP × every deadzone the encoder uses × a dense sweep of the
	// coefficient domain, plus the exact domain boundary. The sweep is
	// exhaustive over |c| ≤ 4096 (covers every coefficient magnitude a
	// 32×32 transform of ±255 residual can emit with margin at low QP
	// granularity) and strided beyond it up to MaxAbsCoeff.
	var coeffs []int32
	for c := int32(-4096); c <= 4096; c++ {
		coeffs = append(coeffs, c)
	}
	for c := int32(4099); c <= MaxAbsCoeff; c += 997 {
		coeffs = append(coeffs, c, -c)
	}
	coeffs = append(coeffs, MaxAbsCoeff, -MaxAbsCoeff)
	for qp := 0; qp <= MaxQP; qp++ {
		for _, dz := range []int32{1, 4} {
			got := append([]int32(nil), coeffs...)
			Quantize(got, qp, dz)
			want := append([]int32(nil), coeffs...)
			QuantizeScalar(want, qp, dz)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("qp=%d dz=%d c=%d: fast=%d scalar=%d",
						qp, dz, coeffs[i], got[i], want[i])
				}
			}
		}
	}
}

func BenchmarkForwardScalar32(b *testing.B) {
	block := make([]int32, 1024)
	for i := range block {
		block[i] = int32(i%29 - 14)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tmp := append([]int32(nil), block...)
		ForwardScalar(tmp, 32)
	}
}

func BenchmarkQuantize32(b *testing.B) {
	block := make([]int32, 1024)
	for i := range block {
		block[i] = int32(i*37%4001 - 2000)
	}
	tmp := make([]int32, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		copy(tmp, block)
		Quantize(tmp, 30, 4)
	}
}

func BenchmarkQuantizeScalar32(b *testing.B) {
	block := make([]int32, 1024)
	for i := range block {
		block[i] = int32(i*37%4001 - 2000)
	}
	tmp := make([]int32, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		copy(tmp, block)
		QuantizeScalar(tmp, 30, 4)
	}
}
