// Package transform implements the residual transforms of the encoder
// core's RDO engine (paper Fig. 3c): separable integer approximations of
// the DCT-II at 4×4, 8×8, 16×16 and 32×32, plus scalar quantization with a
// QP-indexed step table and zigzag coefficient scans.
//
// The H.264-class profile uses 4×4/8×8; the VP9-class profile adds
// 16×16/32×32 — one of the compression tools that "grow the search space"
// (paper §2.1).
package transform

import "math"

// Sizes supported by the transform stage.
var Sizes = []int{4, 8, 16, 32}

// MaxSize is the largest supported transform dimension; callers size
// stack scratch blocks with it.
const MaxSize = 32

// cosBasis[n] is the n×n integer DCT basis scaled by 1<<basisShift,
// stored row-major with stride n (flat slices: the transforms are on the
// encode hot path and must not chase per-row pointers or hash a map in
// their inner loops). Row i, column j holds
// round(c(i) * cos((2j+1) i pi / 2n) * sqrt(2/n) * 2^basisShift)
// with c(0)=1/sqrt(2), c(i>0)=1.
const basisShift = 12

var cosBasis [MaxSize + 1][]int32

func init() {
	for _, n := range Sizes {
		cosBasis[n] = buildBasis(n)
	}
}

func buildBasis(n int) []int32 {
	b := make([]int32, n*n)
	for i := 0; i < n; i++ {
		ci := math.Sqrt(2.0 / float64(n))
		if i == 0 {
			ci *= math.Sqrt(0.5)
		}
		for j := 0; j < n; j++ {
			v := ci * math.Cos(float64(2*j+1)*float64(i)*math.Pi/float64(2*n))
			b[i*n+j] = int32(math.Round(v * (1 << basisShift)))
		}
	}
	return b
}

// Forward applies the 2-D forward transform to an n×n residual block
// (row-major int32, values in roughly [-255, 255]) in place, producing
// coefficients at unit scale (the basis scaling is fully removed, so
// quantization sees natural-magnitude coefficients). Scratch lives on the
// stack; the function allocates nothing.
func Forward(block []int32, n int) {
	basis := cosBasis[n]
	var tmpArr [MaxSize * MaxSize]int64
	tmp := tmpArr[:n*n]
	// rows: tmp = block * basisT  (tmp[i][k] = sum_j block[i][j]*basis[k][j])
	for i := 0; i < n; i++ {
		row := block[i*n : i*n+n]
		for k := 0; k < n; k++ {
			brow := basis[k*n : k*n+n]
			var acc int64
			for j := 0; j < n; j++ {
				acc += int64(row[j]) * int64(brow[j])
			}
			tmp[i*n+k] = acc
		}
	}
	// cols: out[k][l] = sum_i basis[k][i] * tmp[i][l], then descale
	// 2*basisShift. Accumulating whole output rows keeps the inner loop on
	// contiguous tmp rows; integer addition is associative, so the
	// reordering is bit-exact with the direct column walk.
	const round = int64(1) << (2*basisShift - 1)
	var accArr [MaxSize]int64
	for k := 0; k < n; k++ {
		acc := accArr[:n]
		for l := range acc {
			acc[l] = 0
		}
		brow := basis[k*n : k*n+n]
		for i := 0; i < n; i++ {
			b := int64(brow[i])
			trow := tmp[i*n : i*n+n]
			for l := 0; l < n; l++ {
				acc[l] += b * trow[l]
			}
		}
		for l := 0; l < n; l++ {
			block[k*n+l] = int32((acc[l] + round) >> (2 * basisShift))
		}
	}
}

// Inverse applies the 2-D inverse transform in place, reconstructing the
// residual from unit-scale coefficients. Quantized blocks are sparse, so
// both passes skip zero rows/levels — exact, since skipped terms
// contribute zero to the integer accumulators.
func Inverse(block []int32, n int) {
	basis := cosBasis[n]
	var tmpArr [MaxSize * MaxSize]int64
	tmp := tmpArr[:n*n]
	var rowLive [MaxSize]bool
	// rows: tmp[k][j] = sum_l block[k][l] * basis[l][j]
	var accArr [MaxSize]int64
	for k := 0; k < n; k++ {
		crow := block[k*n : k*n+n]
		acc := accArr[:n]
		for j := range acc {
			acc[j] = 0
		}
		live := false
		for l := 0; l < n; l++ {
			c := int64(crow[l])
			if c == 0 {
				continue
			}
			live = true
			brow := basis[l*n : l*n+n]
			for j := 0; j < n; j++ {
				acc[j] += c * int64(brow[j])
			}
		}
		rowLive[k] = live
		copy(tmp[k*n:k*n+n], acc)
	}
	// cols: out[i][j] = sum_k basis[k][i] * tmp[k][j]
	const round = int64(1) << (2*basisShift - 1)
	for i := 0; i < n; i++ {
		acc := accArr[:n]
		for j := range acc {
			acc[j] = 0
		}
		for k := 0; k < n; k++ {
			if !rowLive[k] {
				continue
			}
			b := int64(basis[k*n+i])
			trow := tmp[k*n : k*n+n]
			for j := 0; j < n; j++ {
				acc[j] += b * trow[j]
			}
		}
		for j := 0; j < n; j++ {
			block[i*n+j] = int32((acc[j] + round) >> (2 * basisShift))
		}
	}
}
