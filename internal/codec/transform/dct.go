// Package transform implements the residual transforms of the encoder
// core's RDO engine (paper Fig. 3c): separable integer approximations of
// the DCT-II at 4×4, 8×8, 16×16 and 32×32, plus scalar quantization with a
// QP-indexed step table and zigzag coefficient scans.
//
// The H.264-class profile uses 4×4/8×8; the VP9-class profile adds
// 16×16/32×32 — one of the compression tools that "grow the search space"
// (paper §2.1).
package transform

import "math"

// Sizes supported by the transform stage.
var Sizes = []int{4, 8, 16, 32}

// cosBasis[n] is the n×n integer DCT basis scaled by 1<<basisShift.
// Row i, column j holds round(c(i) * cos((2j+1) i pi / 2n) * sqrt(2/n) * 2^basisShift)
// with c(0)=1/sqrt(2), c(i>0)=1.
const basisShift = 12

var cosBasis = map[int][][]int32{}

func init() {
	for _, n := range Sizes {
		cosBasis[n] = buildBasis(n)
	}
}

func buildBasis(n int) [][]int32 {
	b := make([][]int32, n)
	for i := 0; i < n; i++ {
		b[i] = make([]int32, n)
		ci := math.Sqrt(2.0 / float64(n))
		if i == 0 {
			ci *= math.Sqrt(0.5)
		}
		for j := 0; j < n; j++ {
			v := ci * math.Cos(float64(2*j+1)*float64(i)*math.Pi/float64(2*n))
			b[i][j] = int32(math.Round(v * (1 << basisShift)))
		}
	}
	return b
}

// Forward applies the 2-D forward transform to an n×n residual block
// (row-major int32, values in roughly [-255, 255]) in place, producing
// coefficients at unit scale (the basis scaling is fully removed, so
// quantization sees natural-magnitude coefficients).
func Forward(block []int32, n int) {
	basis := cosBasis[n]
	tmp := make([]int64, n*n)
	// rows: tmp = block * basisT  (tmp[i][k] = sum_j block[i][j]*basis[k][j])
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			var acc int64
			for j := 0; j < n; j++ {
				acc += int64(block[i*n+j]) * int64(basis[k][j])
			}
			tmp[i*n+k] = acc
		}
	}
	// cols: out[k][l] = sum_i basis[k][i] * tmp[i][l], then descale 2*basisShift
	const round = int64(1) << (2*basisShift - 1)
	for k := 0; k < n; k++ {
		for l := 0; l < n; l++ {
			var acc int64
			for i := 0; i < n; i++ {
				acc += int64(basis[k][i]) * tmp[i*n+l]
			}
			block[k*n+l] = int32((acc + round) >> (2 * basisShift))
		}
	}
}

// Inverse applies the 2-D inverse transform in place, reconstructing the
// residual from unit-scale coefficients.
func Inverse(block []int32, n int) {
	basis := cosBasis[n]
	tmp := make([]int64, n*n)
	// rows of coefficients against transposed basis:
	// tmp[i][j] = sum_k basis[k][i] ... do columns first:
	// x[i][j] = sum_k sum_l basis[k][i] * c[k][l] * basis[l][j]
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			var acc int64
			for l := 0; l < n; l++ {
				acc += int64(block[k*n+l]) * int64(basis[l][j])
			}
			tmp[k*n+j] = acc
		}
	}
	const round = int64(1) << (2*basisShift - 1)
	out := make([]int32, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var acc int64
			for k := 0; k < n; k++ {
				acc += int64(cosBasis[n][k][i]) * tmp[k*n+j]
			}
			out[i*n+j] = int32((acc + round) >> (2 * basisShift))
		}
	}
	copy(block, out)
}
