// Package transform implements the residual transforms of the encoder
// core's RDO engine (paper Fig. 3c): separable integer approximations of
// the DCT-II at 4×4, 8×8, 16×16 and 32×32, plus scalar quantization with a
// QP-indexed step table and zigzag coefficient scans.
//
// The H.264-class profile uses 4×4/8×8; the VP9-class profile adds
// 16×16/32×32 — one of the compression tools that "grow the search space"
// (paper §2.1).
//
// The production Forward/Inverse entry points use the even/odd butterfly
// decomposition of the DCT basis (basis row k is symmetric for even k and
// antisymmetric for odd k about the row midpoint), halving the multiply
// count of both passes. The decomposition only reorders exact integer
// additions, so it is bit-identical to the direct matrix walk; the direct
// walks are retained as ForwardScalar/InverseScalar and the differential
// tests in transform_test.go enforce equality across an exhaustive value
// sweep. If a rebuilt basis ever loses the symmetry (it is verified
// entry-by-entry at init), the fast paths fall back to the scalar walks.
package transform

import "math"

// Sizes supported by the transform stage.
var Sizes = []int{4, 8, 16, 32}

// MaxSize is the largest supported transform dimension; callers size
// stack scratch blocks with it.
const MaxSize = 32

// cosBasis[n] is the n×n integer DCT basis scaled by 1<<basisShift,
// stored row-major with stride n (flat slices: the transforms are on the
// encode hot path and must not chase per-row pointers or hash a map in
// their inner loops). Row i, column j holds
// round(c(i) * cos((2j+1) i pi / 2n) * sqrt(2/n) * 2^basisShift)
// with c(0)=1/sqrt(2), c(i>0)=1.
const basisShift = 12

var cosBasis [MaxSize + 1][]int32

// basisSymmetric[n] records whether the integer-rounded basis satisfies
// the exact mirror symmetry basis[k][j] == ±basis[k][n-1-j] (+ for even
// k, − for odd k) that the butterfly fast paths rely on. The float
// arguments of mirrored entries differ, so the rounded values could in
// principle disagree by one ulp; checking the table (rather than trusting
// the math) keeps the fast path provably bit-exact.
var basisSymmetric [MaxSize + 1]bool

func init() {
	for _, n := range Sizes {
		cosBasis[n] = buildBasis(n)
		basisSymmetric[n] = checkBasisSymmetry(cosBasis[n], n)
	}
}

func buildBasis(n int) []int32 {
	b := make([]int32, n*n)
	for i := 0; i < n; i++ {
		ci := math.Sqrt(2.0 / float64(n))
		if i == 0 {
			ci *= math.Sqrt(0.5)
		}
		for j := 0; j < n; j++ {
			v := ci * math.Cos(float64(2*j+1)*float64(i)*math.Pi/float64(2*n))
			b[i*n+j] = int32(math.Round(v * (1 << basisShift)))
		}
	}
	return b
}

func checkBasisSymmetry(b []int32, n int) bool {
	for k := 0; k < n; k++ {
		sign := int32(1)
		if k%2 == 1 {
			sign = -1
		}
		for j := 0; j < n/2; j++ {
			if b[k*n+j] != sign*b[k*n+(n-1-j)] {
				return false
			}
		}
	}
	return true
}

// Forward applies the 2-D forward transform to an n×n residual block
// (row-major int32, values in roughly [-255, 255], |v| < 2^11 required)
// in place, producing coefficients at unit scale (the basis scaling is
// fully removed, so quantization sees natural-magnitude coefficients).
// Scratch lives on the stack; the function allocates nothing. Bit-exact
// with ForwardScalar.
func Forward(block []int32, n int) {
	if !basisSymmetric[n] {
		ForwardScalar(block, n)
		return
	}
	basis := cosBasis[n]
	half := n / 2
	// Row pass: tmp[i][k] = sum_j block[i][j]*basis[k][j]. The butterfly
	// folds the mirrored half of each input row into even/odd sums, so
	// each output needs n/2 multiplies. Inputs are bounded by 2^11 and
	// basis entries by 2^12, so the n/2-term accumulator stays under
	// 2^11·2^12·2^5 = 2^28: int32 is safe and halves the memory traffic
	// of the old int64 scratch.
	var tmpArr [MaxSize * MaxSize]int32
	tmp := tmpArr[:n*n]
	var evenArr, oddArr [MaxSize / 2]int32
	for i := 0; i < n; i++ {
		row := block[i*n : i*n+n]
		even := evenArr[:half]
		odd := oddArr[:half]
		for j := 0; j < half; j++ {
			even[j] = row[j] + row[n-1-j]
			odd[j] = row[j] - row[n-1-j]
		}
		out := tmp[i*n : i*n+n]
		for k := 0; k < n; k++ {
			brow := basis[k*n : k*n+half]
			src := even
			if k%2 == 1 {
				src = odd
			}
			var acc int32
			for j := 0; j < half; j++ {
				acc += src[j] * brow[j]
			}
			out[k] = acc
		}
	}
	// Column pass: out[k][l] = sum_i basis[k][i]*tmp[i][l], butterflied
	// over i, then descaled by 2*basisShift. The folded tmp sums fit
	// int32 (< 2^29); the k-loop accumulator needs int64.
	const round = int64(1) << (2*basisShift - 1)
	var teArr, toArr [MaxSize * MaxSize / 2]int32
	te := teArr[: half*n : half*n]
	to := toArr[: half*n : half*n]
	for i := 0; i < half; i++ {
		a := tmp[i*n : i*n+n]
		b := tmp[(n-1-i)*n : (n-1-i)*n+n]
		for l := 0; l < n; l++ {
			te[i*n+l] = a[l] + b[l]
			to[i*n+l] = a[l] - b[l]
		}
	}
	var accArr [MaxSize]int64
	for k := 0; k < n; k++ {
		acc := accArr[:n]
		for l := range acc {
			acc[l] = 0
		}
		brow := basis[k*n : k*n+half]
		src := te
		if k%2 == 1 {
			src = to
		}
		for i := 0; i < half; i++ {
			b := int64(brow[i])
			trow := src[i*n : i*n+n]
			for l := 0; l < n; l++ {
				acc[l] += b * int64(trow[l])
			}
		}
		for l := 0; l < n; l++ {
			block[k*n+l] = int32((acc[l] + round) >> (2 * basisShift))
		}
	}
}

// ForwardScalar is the direct matrix-walk forward transform, retained as
// the differential-test reference for Forward (and as the fallback if the
// basis loses its mirror symmetry).
func ForwardScalar(block []int32, n int) {
	basis := cosBasis[n]
	var tmpArr [MaxSize * MaxSize]int64
	tmp := tmpArr[:n*n]
	// rows: tmp = block * basisT  (tmp[i][k] = sum_j block[i][j]*basis[k][j])
	for i := 0; i < n; i++ {
		row := block[i*n : i*n+n]
		for k := 0; k < n; k++ {
			brow := basis[k*n : k*n+n]
			var acc int64
			for j := 0; j < n; j++ {
				acc += int64(row[j]) * int64(brow[j])
			}
			tmp[i*n+k] = acc
		}
	}
	// cols: out[k][l] = sum_i basis[k][i] * tmp[i][l], then descale
	// 2*basisShift. Accumulating whole output rows keeps the inner loop on
	// contiguous tmp rows; integer addition is associative, so the
	// reordering is bit-exact with the direct column walk.
	const round = int64(1) << (2*basisShift - 1)
	var accArr [MaxSize]int64
	for k := 0; k < n; k++ {
		acc := accArr[:n]
		for l := range acc {
			acc[l] = 0
		}
		brow := basis[k*n : k*n+n]
		for i := 0; i < n; i++ {
			b := int64(brow[i])
			trow := tmp[i*n : i*n+n]
			for l := 0; l < n; l++ {
				acc[l] += b * trow[l]
			}
		}
		for l := 0; l < n; l++ {
			block[k*n+l] = int32((acc[l] + round) >> (2 * basisShift))
		}
	}
}

// Inverse applies the 2-D inverse transform in place, reconstructing the
// residual from unit-scale coefficients. Quantized blocks are sparse, so
// the first pass skips zero levels (exact: skipped terms contribute zero
// to the integer accumulators) and both passes butterfly the basis
// symmetry, halving the multiplies of every term that does run. Bit-exact
// with InverseScalar.
func Inverse(block []int32, n int) {
	if !basisSymmetric[n] {
		InverseScalar(block, n)
		return
	}
	basis := cosBasis[n]
	half := n / 2
	var tmpArr [MaxSize * MaxSize]int64
	tmp := tmpArr[:n*n]
	var rowLive [MaxSize]bool
	// Row pass: tmp[k][j] = sum_l block[k][l]*basis[l][j]. Split the sum
	// by parity of l: E[j] collects even-l terms, O[j] odd-l terms over
	// the left half; the mirror identities give tmp[k][j]=E+O and
	// tmp[k][n-1-j]=E−O.
	var eArr, oArr [MaxSize / 2]int64
	for k := 0; k < n; k++ {
		crow := block[k*n : k*n+n]
		e := eArr[:half]
		o := oArr[:half]
		for j := range e {
			e[j] = 0
			o[j] = 0
		}
		live := false
		for l := 0; l < n; l++ {
			c := int64(crow[l])
			if c == 0 {
				continue
			}
			live = true
			brow := basis[l*n : l*n+half]
			dst := e
			if l%2 == 1 {
				dst = o
			}
			for j := 0; j < half; j++ {
				dst[j] += c * int64(brow[j])
			}
		}
		rowLive[k] = live
		if !live {
			continue
		}
		trow := tmp[k*n : k*n+n]
		for j := 0; j < half; j++ {
			trow[j] = e[j] + o[j]
			trow[n-1-j] = e[j] - o[j]
		}
	}
	// Column pass: out[i][j] = sum_k basis[k][i]*tmp[k][j], split by
	// parity of k, producing output rows i and n-1-i together.
	const round = int64(1) << (2*basisShift - 1)
	var evenArr, oddArr [MaxSize]int64
	for i := 0; i < half; i++ {
		even := evenArr[:n]
		odd := oddArr[:n]
		for j := range even {
			even[j] = 0
			odd[j] = 0
		}
		for k := 0; k < n; k++ {
			if !rowLive[k] {
				continue
			}
			b := int64(basis[k*n+i])
			trow := tmp[k*n : k*n+n]
			dst := even
			if k%2 == 1 {
				dst = odd
			}
			for j := 0; j < n; j++ {
				dst[j] += b * trow[j]
			}
		}
		top := block[i*n : i*n+n]
		bot := block[(n-1-i)*n : (n-1-i)*n+n]
		for j := 0; j < n; j++ {
			top[j] = int32((even[j] + odd[j] + round) >> (2 * basisShift))
			bot[j] = int32((even[j] - odd[j] + round) >> (2 * basisShift))
		}
	}
}

// InverseScalar is the direct matrix-walk inverse transform, retained as
// the differential-test reference for Inverse (and as the fallback if the
// basis loses its mirror symmetry).
func InverseScalar(block []int32, n int) {
	basis := cosBasis[n]
	var tmpArr [MaxSize * MaxSize]int64
	tmp := tmpArr[:n*n]
	var rowLive [MaxSize]bool
	// rows: tmp[k][j] = sum_l block[k][l] * basis[l][j]
	var accArr [MaxSize]int64
	for k := 0; k < n; k++ {
		crow := block[k*n : k*n+n]
		acc := accArr[:n]
		for j := range acc {
			acc[j] = 0
		}
		live := false
		for l := 0; l < n; l++ {
			c := int64(crow[l])
			if c == 0 {
				continue
			}
			live = true
			brow := basis[l*n : l*n+n]
			for j := 0; j < n; j++ {
				acc[j] += c * int64(brow[j])
			}
		}
		rowLive[k] = live
		copy(tmp[k*n:k*n+n], acc)
	}
	// cols: out[i][j] = sum_k basis[k][i] * tmp[k][j]
	const round = int64(1) << (2*basisShift - 1)
	for i := 0; i < n; i++ {
		acc := accArr[:n]
		for j := range acc {
			acc[j] = 0
		}
		for k := 0; k < n; k++ {
			if !rowLive[k] {
				continue
			}
			b := int64(basis[k*n+i])
			trow := tmp[k*n : k*n+n]
			for j := 0; j < n; j++ {
				acc[j] += b * trow[j]
			}
		}
		for j := 0; j < n; j++ {
			block[i*n+j] = int32((acc[j] + round) >> (2 * basisShift))
		}
	}
}
