package video

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewFrameDims(t *testing.T) {
	f := NewFrame(63, 33)
	if len(f.Y) != 63*33 {
		t.Fatalf("luma size %d", len(f.Y))
	}
	cw, ch := ChromaDims(63, 33)
	if cw != 32 || ch != 17 {
		t.Fatalf("chroma dims %dx%d", cw, ch)
	}
	if len(f.U) != cw*ch || len(f.V) != cw*ch {
		t.Fatal("chroma plane size wrong")
	}
}

func TestCloneIndependence(t *testing.T) {
	f := NewFrame(16, 16)
	f.Fill(100, 110, 120)
	g := f.Clone()
	g.Y[0] = 7
	if f.Y[0] != 100 {
		t.Fatal("clone aliases parent")
	}
}

func TestPSNRIdentical(t *testing.T) {
	f := NewFrame(32, 32)
	f.Fill(128, 128, 128)
	if got := FramePSNR(f, f); !math.IsInf(got, 1) {
		t.Fatalf("identical frames PSNR = %v, want +Inf", got)
	}
}

func TestPSNRKnownValue(t *testing.T) {
	// All pixels differ by exactly 1 => MSE 1 => PSNR = 10*log10(255^2).
	a := NewFrame(16, 16)
	b := NewFrame(16, 16)
	a.Fill(100, 100, 100)
	b.Fill(101, 101, 101)
	want := 10 * math.Log10(255*255)
	if got := FramePSNR(a, b); math.Abs(got-want) > 1e-9 {
		t.Fatalf("PSNR = %v, want %v", got, want)
	}
}

func TestMSESymmetry(t *testing.T) {
	f := func(a, b []uint8) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		return MSE(a[:n], b[:n]) == MSE(b[:n], a[:n])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestScaleDownPreservesMean(t *testing.T) {
	src := NewFrame(64, 64)
	src.Fill(200, 90, 160)
	dst := Scale(src, 16, 16)
	if dst.Width != 16 || dst.Height != 16 {
		t.Fatal("bad dst dims")
	}
	for i, v := range dst.Y {
		if v != 200 {
			t.Fatalf("constant plane not preserved at %d: %d", i, v)
		}
	}
}

func TestScaleUpConstant(t *testing.T) {
	src := NewFrame(8, 8)
	src.Fill(55, 128, 128)
	dst := Scale(src, 32, 32)
	for i, v := range dst.Y {
		if v != 55 {
			t.Fatalf("upscale of constant changed pixel %d: %d", i, v)
		}
	}
}

func TestScaleIdentity(t *testing.T) {
	s := NewSource(SourceConfig{Width: 48, Height: 48, Frames: 1, Seed: 1, Detail: 0.5})
	src := s.Frame(0)
	dst := Scale(src, 48, 48)
	if MSE(src.Y, dst.Y) != 0 {
		t.Fatal("identity scale modified pixels")
	}
}

func TestLadderBelow(t *testing.T) {
	got := LadderBelow(Res1080p)
	want := []string{"144p", "240p", "360p", "480p", "720p", "1080p"}
	if len(got) != len(want) {
		t.Fatalf("ladder size %d want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Name != want[i] {
			t.Fatalf("rung %d = %s want %s", i, got[i].Name, want[i])
		}
	}
}

func TestMOTGeometricSeries(t *testing.T) {
	// Paper footnote 2: outputs below 1080p sum to ~0.85x of 1080p,
	// so total MOT output is < 2x input pixels.
	in := Res1080p.Pixels()
	total := MOTOutputPixels(Res1080p)
	ratio := float64(total) / float64(in)
	if ratio < 1.5 || ratio > 2.1 {
		t.Fatalf("MOT output ratio %.2f, want ~1.8-1.9", ratio)
	}
}

func TestSourceDeterminism(t *testing.T) {
	cfg := SourceConfig{Width: 64, Height: 64, Frames: 3, Seed: 99,
		Detail: 0.5, Motion: 2, Objects: 2, ObjectMotion: 3, Noise: 4}
	a := NewSource(cfg).Frames(3)
	b := NewSource(cfg).Frames(3)
	for i := range a {
		if MSE(a[i].Y, b[i].Y) != 0 || MSE(a[i].U, b[i].U) != 0 {
			t.Fatalf("frame %d differs between identically-seeded sources", i)
		}
	}
}

func TestSourceSeedsDiffer(t *testing.T) {
	cfg := SourceConfig{Width: 64, Height: 64, Seed: 1, Detail: 0.5}
	cfg2 := cfg
	cfg2.Seed = 2
	a := NewSource(cfg).Frame(0)
	b := NewSource(cfg2).Frame(0)
	if MSE(a.Y, b.Y) == 0 {
		t.Fatal("different seeds produced identical frames")
	}
}

func TestSourceMotionIsTranslation(t *testing.T) {
	// With pure pan and no noise/objects, frame t+1 should be ~ frame t
	// shifted: SAD between consecutive frames is large, but SAD between
	// frame t+1 and frame t shifted by the pan vector should be near zero
	// away from borders. This is what makes motion estimation effective.
	cfg := SourceConfig{Width: 128, Height: 96, Seed: 5, Detail: 0.6, Motion: 4}
	s := NewSource(cfg)
	f0, f1 := s.Frame(0), s.Frame(1)
	// pan per frame: +4*256/256 = 4 px horizontally, 2 px vertically.
	var sadShift, sadRaw int64
	for y := 8; y < 88-8; y++ {
		for x := 8; x < 120-8; x++ {
			raw := int64(f1.Y[y*128+x]) - int64(f0.Y[y*128+x])
			sh := int64(f1.Y[y*128+x]) - int64(f0.Y[(y+2)*128+x+4])
			if raw < 0 {
				raw = -raw
			}
			if sh < 0 {
				sh = -sh
			}
			sadRaw += raw
			sadShift += sh
		}
	}
	if sadShift*4 >= sadRaw {
		t.Fatalf("shifted SAD %d not << raw SAD %d: motion is not translation", sadShift, sadRaw)
	}
}

func TestSourceNoiseIncreasesEntropy(t *testing.T) {
	clean := SourceConfig{Width: 64, Height: 64, Seed: 3, Detail: 0.3}
	noisy := clean
	noisy.Noise = 16
	c := NewSource(clean)
	n := NewSource(noisy)
	// Temporal difference energy must be higher for the noisy source.
	cd := MSE(c.Frame(0).Y, c.Frame(1).Y)
	nd := MSE(n.Frame(0).Y, n.Frame(1).Y)
	if nd <= cd {
		t.Fatalf("noise did not raise temporal energy: clean %.1f noisy %.1f", cd, nd)
	}
}

func TestSceneCut(t *testing.T) {
	cfg := SourceConfig{Width: 64, Height: 64, Seed: 8, Detail: 0.5, SceneCut: 5}
	s := NewSource(cfg)
	within := MSE(s.Frame(3).Y, s.Frame(4).Y)
	across := MSE(s.Frame(4).Y, s.Frame(5).Y)
	if across < within*4 {
		t.Fatalf("scene cut not visible: within=%.1f across=%.1f", within, across)
	}
}

func TestClampU8(t *testing.T) {
	cases := map[int32]uint8{-5: 0, 0: 0, 128: 128, 255: 255, 300: 255}
	for in, want := range cases {
		if got := ClampU8(in); got != want {
			t.Errorf("ClampU8(%d)=%d want %d", in, got, want)
		}
	}
}

func TestPlaneData(t *testing.T) {
	f := NewFrame(20, 10)
	y, w, h := f.PlaneData(PlaneY)
	if len(y) != 200 || w != 20 || h != 10 {
		t.Fatal("PlaneY wrong")
	}
	u, w, h := f.PlaneData(PlaneU)
	if len(u) != 50 || w != 10 || h != 5 {
		t.Fatal("PlaneU wrong")
	}
}
