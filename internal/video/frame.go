// Package video provides raw video primitives: YUV 4:2:0 frames, plane
// arithmetic, quality metrics (MSE/PSNR), resolution scaling, the standard
// 16:9 output ladder, and deterministic procedural video sources that stand
// in for the vbench clip corpus (paper §4.1).
package video

import "fmt"

// Frame is an 8-bit YUV 4:2:0 picture. Chroma planes are half resolution in
// each dimension (rounded up). Planes are tightly packed (stride == width).
type Frame struct {
	Width, Height int
	Y, U, V       []uint8
}

// ChromaDims returns the chroma plane dimensions for a luma w×h.
func ChromaDims(w, h int) (cw, ch int) { return (w + 1) / 2, (h + 1) / 2 }

// NewFrame allocates a zeroed frame of the given luma dimensions.
func NewFrame(w, h int) *Frame {
	cw, ch := ChromaDims(w, h)
	return &Frame{
		Width: w, Height: h,
		Y: make([]uint8, w*h),
		U: make([]uint8, cw*ch),
		V: make([]uint8, cw*ch),
	}
}

// Clone returns a deep copy of the frame.
func (f *Frame) Clone() *Frame {
	g := &Frame{Width: f.Width, Height: f.Height,
		Y: append([]uint8(nil), f.Y...),
		U: append([]uint8(nil), f.U...),
		V: append([]uint8(nil), f.V...)}
	return g
}

// CopyFrom copies src into f. Dimensions must match.
func (f *Frame) CopyFrom(src *Frame) {
	if f.Width != src.Width || f.Height != src.Height {
		panic(fmt.Sprintf("video: CopyFrom dimension mismatch %dx%d vs %dx%d",
			f.Width, f.Height, src.Width, src.Height))
	}
	copy(f.Y, src.Y)
	copy(f.U, src.U)
	copy(f.V, src.V)
}

// Fill sets all three planes to constant values.
func (f *Frame) Fill(y, u, v uint8) {
	for i := range f.Y {
		f.Y[i] = y
	}
	for i := range f.U {
		f.U[i] = u
		f.V[i] = v
	}
}

// Pixels returns the luma pixel count, the unit the paper's throughput
// metric (Mpix/s) is expressed in.
func (f *Frame) Pixels() int { return f.Width * f.Height }

// Plane identifies one of the three planes of a frame.
type Plane int

// Plane identifiers.
const (
	PlaneY Plane = iota
	PlaneU
	PlaneV
)

// PlaneData returns the pixel slice and dimensions of the given plane.
func (f *Frame) PlaneData(p Plane) (data []uint8, w, h int) {
	cw, ch := ChromaDims(f.Width, f.Height)
	switch p {
	case PlaneY:
		return f.Y, f.Width, f.Height
	case PlaneU:
		return f.U, cw, ch
	default:
		return f.V, cw, ch
	}
}

// ClampU8 clamps v to [0, 255].
func ClampU8(v int32) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

// Resolution is a named point on the 16:9 output ladder.
type Resolution struct {
	Name          string
	Width, Height int
}

// The standard 16:9 ladder from footnote 1 of the paper.
var (
	Res144p  = Resolution{"144p", 256, 144}
	Res240p  = Resolution{"240p", 426, 240}
	Res360p  = Resolution{"360p", 640, 360}
	Res480p  = Resolution{"480p", 854, 480}
	Res720p  = Resolution{"720p", 1280, 720}
	Res1080p = Resolution{"1080p", 1920, 1080}
	Res1440p = Resolution{"1440p", 2560, 1440}
	Res2160p = Resolution{"2160p", 3840, 2160}
	Res4320p = Resolution{"4320p", 7680, 4320}
)

// Ladder is the full output ladder in ascending order.
var Ladder = []Resolution{Res144p, Res240p, Res360p, Res480p, Res720p,
	Res1080p, Res1440p, Res2160p, Res4320p}

// Pixels returns the per-frame pixel count of the resolution.
func (r Resolution) Pixels() int { return r.Width * r.Height }

// LadderBelow returns the ladder rungs at or below the input resolution:
// the set of outputs a MOT produces for that input (paper §3.1: "for 1080p
// inputs: 1080p, 720p, 480p, 360p, 240p, and 144p are encoded").
func LadderBelow(in Resolution) []Resolution {
	var out []Resolution
	for _, r := range Ladder {
		if r.Pixels() <= in.Pixels() {
			out = append(out, r)
		}
	}
	return out
}

// MOTOutputPixels returns the total output pixels per input frame for a MOT
// at the given input resolution. Per the paper's footnote 2, this is
// approximately a geometric series summing to ~2x the input pixels.
func MOTOutputPixels(in Resolution) int {
	total := 0
	for _, r := range LadderBelow(in) {
		total += r.Pixels()
	}
	return total
}
