package video

import "math"

// MSE returns the mean squared error between two equally-sized pixel
// planes. It panics on length mismatch, which always indicates a caller
// bug rather than a data condition.
func MSE(a, b []uint8) float64 {
	if len(a) != len(b) {
		panic("video: MSE plane length mismatch")
	}
	if len(a) == 0 {
		return 0
	}
	var sum uint64
	for i := range a {
		d := int64(a[i]) - int64(b[i])
		sum += uint64(d * d)
	}
	return float64(sum) / float64(len(a))
}

// PSNR returns the peak signal-to-noise ratio in dB for an MSE, using an
// 8-bit peak. Identical planes return +Inf.
func PSNR(mse float64) float64 {
	if mse == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(255*255/mse)
}

// FramePSNR returns the combined PSNR of two frames, weighting the three
// planes by pixel count (the common "YUV-PSNR" used in codec evaluation;
// the paper's Fig. 7 vertical axis).
func FramePSNR(a, b *Frame) float64 {
	return PSNR(frameMSE(a, b))
}

func frameMSE(a, b *Frame) float64 {
	ny, nuv := len(a.Y), len(a.U)+len(a.V)
	sum := MSE(a.Y, b.Y)*float64(ny) +
		MSE(a.U, b.U)*float64(len(a.U)) +
		MSE(a.V, b.V)*float64(len(a.V))
	return sum / float64(ny+nuv)
}

// SequencePSNR returns the PSNR over a pair of frame sequences, computed
// from the pooled MSE (not the mean of per-frame PSNRs, which overweights
// easy frames).
func SequencePSNR(a, b []*Frame) float64 {
	if len(a) != len(b) {
		panic("video: SequencePSNR length mismatch")
	}
	var total float64
	for i := range a {
		total += frameMSE(a[i], b[i])
	}
	return PSNR(total / float64(len(a)))
}

// SAD returns the sum of absolute differences of two planes/blocks.
func SAD(a, b []uint8) int64 {
	var sum int64
	for i := range a {
		d := int64(a[i]) - int64(b[i])
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum
}
