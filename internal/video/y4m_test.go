package video

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestY4MRoundTrip(t *testing.T) {
	src := NewSource(SourceConfig{Width: 64, Height: 48, Seed: 1, Detail: 0.5, Motion: 1})
	frames := src.Frames(3)
	var buf bytes.Buffer
	w := NewY4MWriter(&buf, 64, 48, 24)
	for _, f := range frames {
		if err := w.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewY4MReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if w, h := r.Size(); w != 64 || h != 48 {
		t.Fatalf("size %dx%d", w, h)
	}
	if r.FPS() != 24 {
		t.Fatalf("fps %d", r.FPS())
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("%d frames", len(got))
	}
	for i := range frames {
		if MSE(got[i].Y, frames[i].Y) != 0 || MSE(got[i].U, frames[i].U) != 0 {
			t.Fatalf("frame %d not bit-exact", i)
		}
	}
}

func TestY4MFractionalFrameRate(t *testing.T) {
	hdr := "YUV4MPEG2 W32 H32 F30000:1001 Ip A1:1 C420jpeg\n"
	r, err := NewY4MReader(strings.NewReader(hdr))
	if err != nil {
		t.Fatal(err)
	}
	if r.FPS() != 30 {
		t.Fatalf("NTSC rate rounded to %d, want 30", r.FPS())
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("empty stream Next = %v, want EOF", err)
	}
}

func TestY4MRejectsBadInput(t *testing.T) {
	cases := []string{
		"NOTY4M W32 H32\n",
		"YUV4MPEG2 W32 H32 C444\n",
		"YUV4MPEG2 H32\n",
		"YUV4MPEG2 Wx H32\n",
	}
	for _, c := range cases {
		if _, err := NewY4MReader(strings.NewReader(c)); err == nil {
			t.Errorf("header %q accepted", strings.TrimSpace(c))
		}
	}
}

func TestY4MTruncatedFrame(t *testing.T) {
	var buf bytes.Buffer
	w := NewY4MWriter(&buf, 32, 32, 30)
	_ = w.WriteFrame(NewFrame(32, 32))
	_ = w.Close()
	data := buf.Bytes()[:buf.Len()-10]
	r, err := NewY4MReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestY4MWriterRejectsMismatchedFrame(t *testing.T) {
	w := NewY4MWriter(io.Discard, 32, 32, 30)
	if err := w.WriteFrame(NewFrame(64, 64)); err == nil {
		t.Fatal("mismatched frame accepted")
	}
}
