package video

import (
	"math/rand"
	"testing"
)

// downsample2xRef is the obvious clamped scalar reference.
func downsample2xRef(src []uint8, w, h int) ([]uint8, int, int) {
	dw, dh := (w+1)/2, (h+1)/2
	dst := make([]uint8, dw*dh)
	for dy := 0; dy < dh; dy++ {
		for dx := 0; dx < dw; dx++ {
			var s int32
			for oy := 0; oy < 2; oy++ {
				for ox := 0; ox < 2; ox++ {
					x, y := 2*dx+ox, 2*dy+oy
					if x >= w {
						x = w - 1
					}
					if y >= h {
						y = h - 1
					}
					s += int32(src[y*w+x])
				}
			}
			dst[dy*dw+dx] = uint8((s + 2) >> 2)
		}
	}
	return dst, dw, dh
}

func TestDownsample2xMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][2]int{{2, 2}, {3, 3}, {8, 6}, {7, 5}, {64, 48}, {65, 47}, {1, 1}, {1, 4}, {5, 1}} {
		w, h := dims[0], dims[1]
		src := make([]uint8, w*h)
		for i := range src {
			src[i] = uint8(rng.Intn(256))
		}
		want, ww, wh := downsample2xRef(src, w, h)
		got := make([]uint8, ww*wh)
		gw, gh := Downsample2x(src, w, h, got)
		if gw != ww || gh != wh {
			t.Fatalf("%dx%d: dims (%d,%d), want (%d,%d)", w, h, gw, gh, ww, wh)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%dx%d: pixel %d = %d, want %d", w, h, i, got[i], want[i])
			}
		}
	}
}

func BenchmarkDownsample2x720p(b *testing.B) {
	w, h := 1280, 720
	src := make([]uint8, w*h)
	for i := range src {
		src[i] = uint8(i * 7)
	}
	dst := make([]uint8, ((w+1)/2)*((h+1)/2))
	b.SetBytes(int64(w * h))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Downsample2x(src, w, h, dst)
	}
}
