package video

// Scale resamples src to w×h. Downscaling uses box filtering (area
// averaging) to avoid aliasing; upscaling uses bilinear interpolation.
// This is the "Scale" stage of the transcoding pipelines in Fig. 2.
func Scale(src *Frame, w, h int) *Frame {
	if w == src.Width && h == src.Height {
		return src.Clone()
	}
	dst := NewFrame(w, h)
	scalePlane(src.Y, src.Width, src.Height, dst.Y, w, h)
	scw, sch := ChromaDims(src.Width, src.Height)
	dcw, dch := ChromaDims(w, h)
	scalePlane(src.U, scw, sch, dst.U, dcw, dch)
	scalePlane(src.V, scw, sch, dst.V, dcw, dch)
	return dst
}

// ScaleTo resamples src to a ladder resolution.
func ScaleTo(src *Frame, r Resolution) *Frame { return Scale(src, r.Width, r.Height) }

func scalePlane(src []uint8, sw, sh int, dst []uint8, dw, dh int) {
	if dw <= sw && dh <= sh {
		boxScale(src, sw, sh, dst, dw, dh)
	} else {
		bilinearScale(src, sw, sh, dst, dw, dh)
	}
}

// boxScale averages the source-rectangle covered by each destination pixel.
// Fixed-point 16.16 coordinates keep it deterministic across platforms.
func boxScale(src []uint8, sw, sh int, dst []uint8, dw, dh int) {
	for dy := 0; dy < dh; dy++ {
		y0 := dy * sh / dh
		y1 := (dy + 1) * sh / dh
		if y1 <= y0 {
			y1 = y0 + 1
		}
		for dx := 0; dx < dw; dx++ {
			x0 := dx * sw / dw
			x1 := (dx + 1) * sw / dw
			if x1 <= x0 {
				x1 = x0 + 1
			}
			var sum, n int32
			for sy := y0; sy < y1; sy++ {
				row := sy * sw
				for sx := x0; sx < x1; sx++ {
					sum += int32(src[row+sx])
					n++
				}
			}
			dst[dy*dw+dx] = uint8((sum + n/2) / n)
		}
	}
}

func bilinearScale(src []uint8, sw, sh int, dst []uint8, dw, dh int) {
	const fp = 16
	xStep := ((sw - 1) << fp) / maxInt(dw-1, 1)
	yStep := ((sh - 1) << fp) / maxInt(dh-1, 1)
	for dy := 0; dy < dh; dy++ {
		fy := dy * yStep
		y0 := fy >> fp
		wy := int32(fy & ((1 << fp) - 1))
		y1 := minInt(y0+1, sh-1)
		for dx := 0; dx < dw; dx++ {
			fx := dx * xStep
			x0 := fx >> fp
			wx := int32(fx & ((1 << fp) - 1))
			x1 := minInt(x0+1, sw-1)
			const one = 1 << fp
			p00 := int32(src[y0*sw+x0])
			p01 := int32(src[y0*sw+x1])
			p10 := int32(src[y1*sw+x0])
			p11 := int32(src[y1*sw+x1])
			top := (p00*(one-wx) + p01*wx) >> fp
			bot := (p10*(one-wx) + p11*wx) >> fp
			dst[dy*dw+dx] = uint8((top*(int32(one)-wy) + bot*wy + one/2) >> fp)
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
