package video

// Downsample2x fills dst with the 2:1 box-filtered (2×2 rounding average)
// reduction of the w×h plane src and returns the reduced dimensions
// (⌈w/2⌉, ⌈h/2⌉). Odd edges replicate the last row/column. dst must have
// at least ⌈w/2⌉·⌈h/2⌉ capacity; it is the caller's buffer so pyramid
// construction can stay allocation-free when levels are reused.
//
// This is the decimation step of the multi-resolution motion-search
// pyramid (paper §3.2: the VCU's motion engine searches coarse-to-fine
// over downsampled planes).
func Downsample2x(src []uint8, w, h int, dst []uint8) (int, int) {
	dw := (w + 1) / 2
	dh := (h + 1) / 2
	for dy := 0; dy < dh; dy++ {
		y0 := 2 * dy
		y1 := y0 + 1
		if y1 >= h {
			y1 = h - 1
		}
		r0 := src[y0*w:]
		r1 := src[y1*w:]
		drow := dst[dy*dw:]
		dx := 0
		for ; 2*dx+1 < w; dx++ {
			x := 2 * dx
			s := int32(r0[x]) + int32(r0[x+1]) + int32(r1[x]) + int32(r1[x+1])
			drow[dx] = uint8((s + 2) >> 2)
		}
		if dx < dw { // odd width: replicate the last column
			x := w - 1
			s := 2*int32(r0[x]) + 2*int32(r1[x])
			drow[dx] = uint8((s + 2) >> 2)
		}
	}
	return dw, dh
}
