package video

// Procedural video sources. These replace the vbench clip corpus: each
// source is deterministic (seeded) and parameterized along the same three
// axes the suite was designed around — resolution, frame rate, and entropy
// (here decomposed into spatial detail, motion magnitude, and temporal
// noise). Motion is true translation of band-limited textures, so a real
// motion-estimating encoder behaves on this content the way it does on
// natural video: low-motion sources compress far better than noisy,
// high-motion ones.

// SourceConfig describes a procedural clip.
type SourceConfig struct {
	Name          string
	Width, Height int
	FPS           int
	Frames        int
	Seed          uint64

	// Detail is the spatial texture frequency in [0,1]: 0 is nearly flat,
	// 1 is per-4-pixel variation.
	Detail float64
	// Motion is the global pan speed in luma pixels per frame.
	Motion float64
	// ObjectMotion is the speed of the moving foreground objects.
	ObjectMotion float64
	// Objects is the number of moving foreground discs.
	Objects int
	// Noise is the temporal noise amplitude in luma levels (0 = clean).
	Noise int
	// SceneCut, if nonzero, switches to fresh content every SceneCut frames.
	SceneCut int
}

// Source generates frames of a procedural clip.
type Source struct {
	cfg SourceConfig
	// objects
	objX, objY, objVX, objVY []float64
	objR                     []int
	objSeed                  []uint64
}

// NewSource builds a Source for the config. The same config always yields
// bit-identical frames.
func NewSource(cfg SourceConfig) *Source {
	if cfg.FPS == 0 {
		cfg.FPS = 30
	}
	s := &Source{cfg: cfg}
	rng := splitMix64(cfg.Seed + 1)
	for i := 0; i < cfg.Objects; i++ {
		s.objX = append(s.objX, float64(rng.next()%uint64(maxInt(cfg.Width, 1))))
		s.objY = append(s.objY, float64(rng.next()%uint64(maxInt(cfg.Height, 1))))
		ang := float64(rng.next()%360) / 360.0
		vx, vy := cosApprox(ang), sinApprox(ang)
		s.objVX = append(s.objVX, vx*cfg.ObjectMotion)
		s.objVY = append(s.objVY, vy*cfg.ObjectMotion)
		s.objR = append(s.objR, 8+int(rng.next()%uint64(maxInt(cfg.Height/6, 9))))
		s.objSeed = append(s.objSeed, rng.next())
	}
	return s
}

// Config returns the source configuration.
func (s *Source) Config() SourceConfig { return s.cfg }

// Frame renders frame t (0-based).
func (s *Source) Frame(t int) *Frame {
	cfg := s.cfg
	f := NewFrame(cfg.Width, cfg.Height)
	scene := uint64(0)
	if cfg.SceneCut > 0 {
		scene = uint64(t / cfg.SceneCut)
	}
	baseSeed := cfg.Seed ^ scene*0x9e3779b97f4a7c15

	// Texture scale: map Detail in [0,1] to a lattice period 64..4 px.
	period := 64 - int(cfg.Detail*60)
	if period < 4 {
		period = 4
	}
	// Global pan offset for this frame.
	panX := int32(cfg.Motion * float64(t) * 256) // 1/256-pel
	panY := int32(cfg.Motion * float64(t) * 128)

	// Luma background.
	for y := 0; y < cfg.Height; y++ {
		for x := 0; x < cfg.Width; x++ {
			wx := int32(x)<<8 + panX
			wy := int32(y)<<8 + panY
			f.Y[y*cfg.Width+x] = valueNoise(baseSeed, wx, wy, period)
		}
	}
	// Foreground objects (textured discs on their own trajectories).
	for i := range s.objX {
		cx := s.objX[i] + s.objVX[i]*float64(t)
		cy := s.objY[i] + s.objVY[i]*float64(t)
		r := s.objR[i]
		// wrap around the frame
		cxi := wrap(int(cx), cfg.Width)
		cyi := wrap(int(cy), cfg.Height)
		for dy := -r; dy <= r; dy++ {
			for dx := -r; dx <= r; dx++ {
				if dx*dx+dy*dy > r*r {
					continue
				}
				px := wrap(cxi+dx, cfg.Width)
				py := wrap(cyi+dy, cfg.Height)
				tex := valueNoise(s.objSeed[i]^baseSeed, int32(dx)<<8, int32(dy)<<8, maxInt(period/2, 4))
				f.Y[py*cfg.Width+px] = tex
			}
		}
	}
	// Temporal noise.
	if cfg.Noise > 0 {
		h := splitMix64(baseSeed ^ uint64(t)*0x2545f4914f6cdd1d)
		for i := range f.Y {
			n := int32(h.next()%uint64(2*cfg.Noise+1)) - int32(cfg.Noise)
			f.Y[i] = ClampU8(int32(f.Y[i]) + n)
		}
	}
	// Chroma: low-frequency color field, panned with the scene.
	cw, chh := ChromaDims(cfg.Width, cfg.Height)
	cPeriod := maxInt(period*2, 16)
	for y := 0; y < chh; y++ {
		for x := 0; x < cw; x++ {
			wx := int32(x)<<9 + panX
			wy := int32(y)<<9 + panY
			u := valueNoise(baseSeed^0xaaaa, wx, wy, cPeriod)
			v := valueNoise(baseSeed^0x5555, wx, wy, cPeriod)
			// keep chroma near neutral to mimic natural video statistics
			f.U[y*cw+x] = uint8(96 + int(u)/4)
			f.V[y*cw+x] = uint8(96 + int(v)/4)
		}
	}
	return f
}

// Frames renders frames [0, n) of the clip.
func (s *Source) Frames(n int) []*Frame {
	out := make([]*Frame, n)
	for i := 0; i < n; i++ {
		out[i] = s.Frame(i)
	}
	return out
}

// valueNoise returns smooth lattice noise at sub-pel coordinates (1/256-pel
// fixed point), with lattice period in pixels.
func valueNoise(seed uint64, fx, fy int32, period int) uint8 {
	p := int32(period) << 8
	// lattice cell and intra-cell position
	lx := floorDiv(fx, p)
	ly := floorDiv(fy, p)
	tx := fx - lx*p // [0, p)
	ty := fy - ly*p
	// smoothstep weights in Q8
	wx := smooth8(uint32(tx) * 256 / uint32(p))
	wy := smooth8(uint32(ty) * 256 / uint32(p))
	v00 := latticeHash(seed, lx, ly)
	v01 := latticeHash(seed, lx+1, ly)
	v10 := latticeHash(seed, lx, ly+1)
	v11 := latticeHash(seed, lx+1, ly+1)
	top := (v00*(256-wx) + v01*wx) >> 8
	bot := (v10*(256-wx) + v11*wx) >> 8
	return uint8((top*(256-wy) + bot*wy) >> 8)
}

func floorDiv(a, b int32) int32 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// smooth8 applies the smoothstep polynomial 3t²-2t³ in Q8.
func smooth8(t uint32) uint32 {
	if t > 255 {
		t = 255
	}
	return (t * t * (3*256 - 2*t)) >> 16
}

func latticeHash(seed uint64, x, y int32) uint32 {
	h := seed ^ uint64(uint32(x))*0x9e3779b97f4a7c15 ^ uint64(uint32(y))*0xc2b2ae3d27d4eb4f
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return uint32(h & 0xff)
}

func wrap(v, n int) int {
	v %= n
	if v < 0 {
		v += n
	}
	return v
}

// splitMix64 is a tiny deterministic PRNG (no math/rand dependency so the
// stream is stable across Go releases).
type splitMix64 uint64

func (s *splitMix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// cosApprox/sinApprox give a coarse direction vector for t in [0,1) turns.
// Precision is irrelevant — they only diversify object trajectories.
func cosApprox(t float64) float64 { return 1 - 2*quadrantFold(t) }
func sinApprox(t float64) float64 { return 1 - 2*quadrantFold(t+0.75) }

func quadrantFold(t float64) float64 {
	t -= float64(int(t))
	if t < 0 {
		t++
	}
	if t > 0.5 {
		t = 1 - t
	}
	return 2 * t
}
