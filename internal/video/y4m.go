package video

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Y4M (YUV4MPEG2) stream I/O: the interchange format software encoders
// consume, so the tools can process real video alongside the procedural
// sources. Only 8-bit 4:2:0 variants are supported — the codec's native
// layout.

// Y4MWriter streams frames to a YUV4MPEG2 container.
type Y4MWriter struct {
	w             *bufio.Writer
	width, height int
	wroteHeader   bool
	fpsNum        int
	fpsDen        int
}

// NewY4MWriter returns a writer producing fps frames per second.
func NewY4MWriter(w io.Writer, width, height, fps int) *Y4MWriter {
	return &Y4MWriter{w: bufio.NewWriter(w), width: width, height: height, fpsNum: fps, fpsDen: 1}
}

// WriteFrame appends one frame; dimensions must match the writer's.
func (y *Y4MWriter) WriteFrame(f *Frame) error {
	if f.Width != y.width || f.Height != y.height {
		return fmt.Errorf("y4m: frame %dx%d does not match stream %dx%d",
			f.Width, f.Height, y.width, y.height)
	}
	if !y.wroteHeader {
		y.wroteHeader = true
		if _, err := fmt.Fprintf(y.w, "YUV4MPEG2 W%d H%d F%d:%d Ip A1:1 C420jpeg\n",
			y.width, y.height, y.fpsNum, y.fpsDen); err != nil {
			return err
		}
	}
	if _, err := y.w.WriteString("FRAME\n"); err != nil {
		return err
	}
	for _, plane := range [][]uint8{f.Y, f.U, f.V} {
		if _, err := y.w.Write(plane); err != nil {
			return err
		}
	}
	return nil
}

// Close flushes the stream.
func (y *Y4MWriter) Close() error { return y.w.Flush() }

// Y4MReader streams frames from a YUV4MPEG2 container.
type Y4MReader struct {
	r             *bufio.Reader
	width, height int
	fps           int
}

// NewY4MReader parses the stream header and returns a reader.
func NewY4MReader(r io.Reader) (*Y4MReader, error) {
	br := bufio.NewReader(r)
	line, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("y4m: reading header: %w", err)
	}
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) == 0 || fields[0] != "YUV4MPEG2" {
		return nil, fmt.Errorf("y4m: not a YUV4MPEG2 stream")
	}
	y := &Y4MReader{r: br, fps: 30}
	for _, f := range fields[1:] {
		if len(f) < 2 {
			continue
		}
		val := f[1:]
		switch f[0] {
		case 'W':
			y.width, err = strconv.Atoi(val)
		case 'H':
			y.height, err = strconv.Atoi(val)
		case 'F':
			num, den := 30, 1
			if i := strings.IndexByte(val, ':'); i >= 0 {
				num, err = strconv.Atoi(val[:i])
				if err == nil {
					den, err = strconv.Atoi(val[i+1:])
				}
			} else {
				num, err = strconv.Atoi(val)
			}
			if den <= 0 {
				return nil, fmt.Errorf("y4m: bad frame rate %q", val)
			}
			y.fps = (num + den/2) / den
		case 'C':
			if !strings.HasPrefix(val, "420") {
				return nil, fmt.Errorf("y4m: unsupported chroma %q (only 4:2:0)", val)
			}
		}
		if err != nil {
			return nil, fmt.Errorf("y4m: parsing %q: %w", f, err)
		}
	}
	if y.width <= 0 || y.height <= 0 {
		return nil, fmt.Errorf("y4m: missing or invalid dimensions")
	}
	return y, nil
}

// Size returns the stream dimensions.
func (y *Y4MReader) Size() (w, h int) { return y.width, y.height }

// FPS returns the rounded frame rate.
func (y *Y4MReader) FPS() int { return y.fps }

// Next reads one frame, or io.EOF at end of stream.
func (y *Y4MReader) Next() (*Frame, error) {
	line, err := y.r.ReadString('\n')
	if err == io.EOF && line == "" {
		return nil, io.EOF
	}
	if err != nil {
		return nil, fmt.Errorf("y4m: reading frame marker: %w", err)
	}
	if !strings.HasPrefix(line, "FRAME") {
		return nil, fmt.Errorf("y4m: expected FRAME marker, got %q", strings.TrimSpace(line))
	}
	f := NewFrame(y.width, y.height)
	for _, plane := range [][]uint8{f.Y, f.U, f.V} {
		if _, err := io.ReadFull(y.r, plane); err != nil {
			return nil, fmt.Errorf("y4m: truncated frame: %w", err)
		}
	}
	return f, nil
}

// ReadAll drains the stream.
func (y *Y4MReader) ReadAll() ([]*Frame, error) {
	var out []*Frame
	for {
		f, err := y.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
}
