// Package tco models performance per total-cost-of-ownership and per watt
// for the four systems of Table 1: the dual-socket Skylake baseline, the
// 4×Nvidia-T4 offload system, and the 8- and 20-VCU accelerator systems.
//
// The paper withholds its TCO methodology ("we are unable to discuss our
// detailed TCO methodology due to confidentiality reasons") and reports
// only ratios, so cost and power here are parametric constants calibrated
// to make the published ratio structure emerge; VCU *throughput*, by
// contrast, is measured by running the discrete-event chip model. Every
// constant is recorded in EXPERIMENTS.md.
package tco

import (
	"time"

	"openvcu/internal/codec"
	"openvcu/internal/vcu"
	"openvcu/internal/video"
)

// System identifies a Table 1 row.
type System int

// Table 1 systems.
const (
	SystemSkylake System = iota
	SystemGPU4xT4
	SystemVCU8
	SystemVCU20
)

// String names the system as Table 1 does.
func (s System) String() string {
	switch s {
	case SystemSkylake:
		return "Skylake"
	case SystemGPU4xT4:
		return "4xNvidia T4"
	case SystemVCU8:
		return "8xVCU"
	default:
		return "20xVCU"
	}
}

// VCUCount returns the accelerator count (0 for non-VCU systems).
func (s System) VCUCount() int {
	switch s {
	case SystemVCU8:
		return 8
	case SystemVCU20:
		return 20
	default:
		return 0
	}
}

// Constants holds the calibrated cost/power/baseline-throughput inputs.
type Constants struct {
	// Measured baseline throughputs (Mpix/s, offline two-pass SOT on the
	// vbench suite): Table 1 rows for Skylake and the GPU.
	SkylakeH264, SkylakeVP9 float64
	GPUH264                 float64 // the T4 stack had no VP9 encoder

	// TCOUnits is capex + 3 years of opex, normalized to Skylake = 1.0.
	// Derived by inverting Table 1's perf/TCO column against its
	// throughput column (the two columns pin the ratio).
	TCOUnits map[System]float64

	// ActivePowerWatts is per-system active (busy minus idle) power for
	// the perf/watt comparisons of §4.1, calibrated to the published
	// 6.7x (SOT H.264) and 68.9x (MOT VP9) ratios.
	SkylakeActiveWatts float64
	VCU20SOTWatts      float64
	VCU20MOTWatts      float64
}

// DefaultConstants returns the calibration described above.
func DefaultConstants() Constants {
	return Constants{
		SkylakeH264: 714, SkylakeVP9: 154,
		GPUH264: 2484,
		TCOUnits: map[System]float64{
			SystemSkylake: 1.00,
			SystemGPU4xT4: 2.32,
			SystemVCU8:    1.90,
			SystemVCU20:   2.99,
		},
		SkylakeActiveWatts: 350,
		VCU20SOTWatts:      1090,
		VCU20MOTWatts:      612,
	}
}

// Row is one line of the reproduced Table 1.
type Row struct {
	System         System
	ThroughputH264 float64 // Mpix/s
	ThroughputVP9  float64 // Mpix/s; 0 = not supported
	PerfTCOH264    float64 // normalized to Skylake
	PerfTCOVP9     float64
}

// Table1 regenerates the paper's Table 1. Baseline rows come from the
// Constants; VCU rows are produced by simulating the chip model under a
// saturated offline two-pass SOT workload (the vbench methodology).
func Table1(c Constants, p vcu.Params, simTime time.Duration) []Row {
	measure := func(n int, profile codec.Profile) float64 {
		w := vcu.Workload{Mode: vcu.ModeSOT, Profile: profile,
			Encode: vcu.EncodeTwoPassOffline, InputRes: video.Res1080p}
		return vcu.RunThroughput(p, n, w, simTime).MpixPerSec
	}
	rows := []Row{
		{System: SystemSkylake, ThroughputH264: c.SkylakeH264, ThroughputVP9: c.SkylakeVP9},
		{System: SystemGPU4xT4, ThroughputH264: c.GPUH264},
		{System: SystemVCU8, ThroughputH264: measure(8, codec.H264Class), ThroughputVP9: measure(8, codec.VP9Class)},
		{System: SystemVCU20, ThroughputH264: measure(20, codec.H264Class), ThroughputVP9: measure(20, codec.VP9Class)},
	}
	baseH264 := c.SkylakeH264 / c.TCOUnits[SystemSkylake]
	baseVP9 := c.SkylakeVP9 / c.TCOUnits[SystemSkylake]
	for i := range rows {
		r := &rows[i]
		tcoUnits := c.TCOUnits[r.System]
		r.PerfTCOH264 = r.ThroughputH264 / tcoUnits / baseH264
		if r.ThroughputVP9 > 0 {
			r.PerfTCOVP9 = r.ThroughputVP9 / tcoUnits / baseVP9
		}
	}
	return rows
}

// PerfPerWatt reproduces the §4.1 perf/watt comparisons: the 20xVCU
// system against the CPU baseline for single-output H.264 and
// multi-output VP9.
type PerfPerWatt struct {
	SOTH264Ratio float64 // paper: 6.7x
	MOTVP9Ratio  float64 // paper: 68.9x
}

// PerfWatt computes the two ratios using simulated VCU throughput and the
// calibrated power constants.
func PerfWatt(c Constants, p vcu.Params, simTime time.Duration) PerfPerWatt {
	sot := vcu.RunThroughput(p, 20, vcu.Workload{Mode: vcu.ModeSOT,
		Profile: codec.H264Class, Encode: vcu.EncodeTwoPassOffline,
		InputRes: video.Res1080p}, simTime)
	mot := vcu.RunThroughput(p, 20, vcu.Workload{Mode: vcu.ModeMOT,
		Profile: codec.VP9Class, Encode: vcu.EncodeTwoPassOffline,
		InputRes: video.Res1080p}, simTime)
	cpuH264 := c.SkylakeH264 / c.SkylakeActiveWatts
	cpuVP9 := c.SkylakeVP9 / c.SkylakeActiveWatts
	return PerfPerWatt{
		SOTH264Ratio: (sot.MpixPerSec / c.VCU20SOTWatts) / cpuH264,
		MOTVP9Ratio:  (mot.MpixPerSec / c.VCU20MOTWatts) / cpuVP9,
	}
}

// MOTvsSOT reports the production MOT/SOT per-VCU throughput pair of
// Figure 8 (≈400 vs ≈250 Mpix/s): the Table 1 numbers discounted by
// production I/O and workload-mix overhead.
type MOTvsSOT struct {
	MOTPerVCU float64
	SOTPerVCU float64
}

// ProductionThroughput measures per-VCU production throughput: the
// IOOverheadFactor models the gap between vbench and the production
// service ("the difference vs vbench MOT throughput is due to I/O and
// workload mix"). SOT production workers also produce inefficient
// low-resolution outputs for high-resolution inputs, a further discount.
func ProductionThroughput(p vcu.Params, simTime time.Duration) MOTvsSOT {
	const ioOverhead = 2.4 // vbench 976 -> production ~400 Mpix/s per VCU
	mot := vcu.RunThroughput(p, 4, vcu.Workload{Mode: vcu.ModeMOT,
		Profile: codec.VP9Class, Encode: vcu.EncodeTwoPassOffline,
		InputRes: video.Res1080p, IOOverheadFactor: ioOverhead}, simTime)
	// SOT pays the same I/O overhead plus low-resolution outputs whose
	// decode dominates: model by charging SOT the 720p ladder mix.
	sot := vcu.RunThroughput(p, 4, vcu.Workload{Mode: vcu.ModeSOT,
		Profile: codec.VP9Class, Encode: vcu.EncodeTwoPassOffline,
		InputRes: video.Res720p, IOOverheadFactor: ioOverhead * 1.25}, simTime)
	return MOTvsSOT{MOTPerVCU: mot.PerVCUMpixPerSec, SOTPerVCU: sot.PerVCUMpixPerSec}
}
