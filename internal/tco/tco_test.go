package tco

import (
	"testing"
	"time"

	"openvcu/internal/vcu"
)

func near(got, want, tolFrac float64) bool {
	return got > want*(1-tolFrac) && got < want*(1+tolFrac)
}

func TestTable1Reproduction(t *testing.T) {
	rows := Table1(DefaultConstants(), vcu.DefaultParams(), 120*time.Second)
	want := map[System]Row{
		SystemSkylake: {ThroughputH264: 714, ThroughputVP9: 154, PerfTCOH264: 1.0, PerfTCOVP9: 1.0},
		SystemGPU4xT4: {ThroughputH264: 2484, PerfTCOH264: 1.5},
		SystemVCU8:    {ThroughputH264: 5973, ThroughputVP9: 6122, PerfTCOH264: 4.4, PerfTCOVP9: 20.8},
		SystemVCU20:   {ThroughputH264: 14932, ThroughputVP9: 15306, PerfTCOH264: 7.0, PerfTCOVP9: 33.3},
	}
	for _, r := range rows {
		w := want[r.System]
		if !near(r.ThroughputH264, w.ThroughputH264, 0.10) {
			t.Errorf("%s H.264 throughput %.0f, paper %.0f", r.System, r.ThroughputH264, w.ThroughputH264)
		}
		if w.ThroughputVP9 > 0 && !near(r.ThroughputVP9, w.ThroughputVP9, 0.10) {
			t.Errorf("%s VP9 throughput %.0f, paper %.0f", r.System, r.ThroughputVP9, w.ThroughputVP9)
		}
		if !near(r.PerfTCOH264, w.PerfTCOH264, 0.12) {
			t.Errorf("%s H.264 perf/TCO %.2f, paper %.2f", r.System, r.PerfTCOH264, w.PerfTCOH264)
		}
		if w.PerfTCOVP9 > 0 && !near(r.PerfTCOVP9, w.PerfTCOVP9, 0.12) {
			t.Errorf("%s VP9 perf/TCO %.2f, paper %.2f", r.System, r.PerfTCOVP9, w.PerfTCOVP9)
		}
	}
	// Ordering claims: VCU dominates GPU dominates CPU on perf/TCO.
	if !(rows[3].PerfTCOH264 > rows[2].PerfTCOH264 &&
		rows[2].PerfTCOH264 > rows[1].PerfTCOH264 &&
		rows[1].PerfTCOH264 > rows[0].PerfTCOH264) {
		t.Error("perf/TCO ordering violated")
	}
}

func TestPerfPerWattRatios(t *testing.T) {
	pw := PerfWatt(DefaultConstants(), vcu.DefaultParams(), 120*time.Second)
	if !near(pw.SOTH264Ratio, 6.7, 0.15) {
		t.Errorf("SOT H.264 perf/watt ratio %.1f, paper 6.7", pw.SOTH264Ratio)
	}
	if !near(pw.MOTVP9Ratio, 68.9, 0.15) {
		t.Errorf("MOT VP9 perf/watt ratio %.1f, paper 68.9", pw.MOTVP9Ratio)
	}
}

func TestProductionThroughputFigure8(t *testing.T) {
	r := ProductionThroughput(vcu.DefaultParams(), 120*time.Second)
	if !near(r.MOTPerVCU, 400, 0.15) {
		t.Errorf("production MOT %.0f Mpix/s per VCU, Figure 8 shows ~400", r.MOTPerVCU)
	}
	if !near(r.SOTPerVCU, 250, 0.20) {
		t.Errorf("production SOT %.0f Mpix/s per VCU, Figure 8 shows ~250", r.SOTPerVCU)
	}
	if r.MOTPerVCU <= r.SOTPerVCU {
		t.Error("MOT must outperform SOT")
	}
}

func TestVP9OnVCUIsTwoOrdersOverCPU(t *testing.T) {
	// §4.1: "the 20xVCU system has 99.4x the throughput of the CPU
	// baseline" for VP9.
	rows := Table1(DefaultConstants(), vcu.DefaultParams(), 120*time.Second)
	ratio := rows[3].ThroughputVP9 / rows[0].ThroughputVP9
	if !near(ratio, 99.4, 0.12) {
		t.Errorf("20xVCU/CPU VP9 throughput ratio %.1f, paper 99.4", ratio)
	}
}
