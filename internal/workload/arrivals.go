package workload

import (
	"math"
	"time"
)

// Arrival generation: a seeded, wall-clock-free demand process for the
// overload experiments. Upload demand follows the paper's diurnal cycle
// (the fleet is provisioned for peak, §2.2) with an optional spike
// window layered on top — the surge the overload game-day replays
// against a chaos schedule. Everything is a pure function of the
// config, so the same seed always yields the same trace.

// ArrivalClass is the priority class of one arriving video.
type ArrivalClass int

// Arrival classes, in shed order from last to first.
const (
	// ArriveLive is a real-time stream: critical priority.
	ArriveLive ArrivalClass = iota
	// ArriveUpload is a fresh user upload: normal priority.
	ArriveUpload
	// ArriveBatch is a re-encode of existing content: batch priority,
	// first to shed under overload.
	ArriveBatch
)

// String names the class.
func (a ArrivalClass) String() string {
	switch a {
	case ArriveLive:
		return "live"
	case ArriveUpload:
		return "upload"
	default:
		return "batch"
	}
}

// Arrival is one video arriving at the platform.
type Arrival struct {
	ID    int
	At    time.Duration
	Class ArrivalClass
}

// ArrivalConfig parameterizes the demand process.
type ArrivalConfig struct {
	Seed uint64
	// Horizon is the length of the generated trace.
	Horizon time.Duration
	// BaseRatePerHour is the mean arrival rate of the diurnal cycle.
	BaseRatePerHour float64
	// DiurnalAmplitude in [0, 1] scales the sinusoidal swing around the
	// base rate (0 = flat, 1 = rate touches zero at the trough).
	DiurnalAmplitude float64
	// DiurnalPeriod is the cycle length (default 24h).
	DiurnalPeriod time.Duration
	// SpikeStart/SpikeDuration bound the surge window; SpikeFactor
	// multiplies the instantaneous rate inside it (2 = the game-day's
	// 2× demand spike). SpikeFactor <= 1 or zero duration means no
	// spike.
	SpikeStart    time.Duration
	SpikeDuration time.Duration
	SpikeFactor   float64
	// LiveShare and BatchShare are the class mix; the remainder is
	// uploads.
	LiveShare  float64
	BatchShare float64
}

// RateAt returns the instantaneous arrival rate (per hour) at t: the
// diurnal sinusoid times the spike factor when t is inside the spike
// window.
func (cfg ArrivalConfig) RateAt(t time.Duration) float64 {
	period := cfg.DiurnalPeriod
	if period <= 0 {
		period = 24 * time.Hour
	}
	phase := 2 * math.Pi * float64(t) / float64(period)
	rate := cfg.BaseRatePerHour * (1 + cfg.DiurnalAmplitude*math.Sin(phase))
	if rate < 0 {
		rate = 0
	}
	if cfg.SpikeFactor > 1 && cfg.SpikeDuration > 0 &&
		t >= cfg.SpikeStart && t < cfg.SpikeStart+cfg.SpikeDuration {
		rate *= cfg.SpikeFactor
	}
	return rate
}

// peakRate bounds RateAt over the horizon — the thinning envelope.
func (cfg ArrivalConfig) peakRate() float64 {
	peak := cfg.BaseRatePerHour * (1 + cfg.DiurnalAmplitude)
	if cfg.SpikeFactor > 1 && cfg.SpikeDuration > 0 {
		peak *= cfg.SpikeFactor
	}
	return peak
}

// GenerateArrivals produces the seeded arrival trace: a thinned
// (non-homogeneous) Poisson process — candidate arrivals at the peak
// rate, each kept with probability rate(t)/peak — with each kept
// arrival assigned a class by the configured mix. Deterministic in the
// config; no wall clock.
func GenerateArrivals(cfg ArrivalConfig) []Arrival {
	peak := cfg.peakRate()
	if peak <= 0 || cfg.Horizon <= 0 {
		return nil
	}
	rng := cfg.Seed*2862933555777941757 + 3037000493
	next := func() float64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return float64(rng%1e9) / 1e9
	}
	meanGap := float64(time.Hour) / peak
	var out []Arrival
	t := time.Duration(0)
	for {
		// Exponential inter-arrival at the envelope rate.
		u := next()
		if u <= 0 {
			u = 0.5e-9
		}
		t += time.Duration(-math.Log(u) * meanGap)
		if t >= cfg.Horizon {
			return out
		}
		if next() >= cfg.RateAt(t)/peak {
			continue // thinned: below the instantaneous rate
		}
		cls := ArriveUpload
		switch mix := next(); {
		case mix < cfg.LiveShare:
			cls = ArriveLive
		case mix < cfg.LiveShare+cfg.BatchShare:
			cls = ArriveBatch
		}
		out = append(out, Arrival{ID: len(out), At: t, Class: cls})
	}
}
