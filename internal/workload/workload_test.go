package workload

import "testing"

func TestPowerLawHead(t *testing.T) {
	c := Generate(10000, 1)
	// §2.2: "the very popular videos that make up the majority of watch
	// time represent a small fraction of transcoding and storage costs."
	popularShare := c.WatchShare(BucketPopular)
	if popularShare < 0.25 {
		t.Fatalf("top 1%% of videos hold %.0f%% of watch time, want a heavy head", popularShare*100)
	}
	tailShare := c.WatchShare(BucketTail)
	if tailShare > 0.5 {
		t.Fatalf("tail holds %.0f%% of watch time, should be minor per watch", tailShare*100)
	}
	// But the tail is the majority of videos.
	tailCount := 0
	for _, v := range c.Videos {
		if c.BucketOf(v) == BucketTail {
			tailCount++
		}
	}
	if tailCount < len(c.Videos)*8/10 {
		t.Fatalf("tail has %d/%d videos, should be the vast majority", tailCount, len(c.Videos))
	}
}

func TestWatchMonotoneWithRank(t *testing.T) {
	c := Generate(2000, 2)
	ranked := RankByWatch(c)
	for i, v := range ranked {
		if v.Rank != i+1 {
			t.Fatalf("rank %d at sorted position %d: watch not monotone", v.Rank, i)
		}
	}
}

func TestBucketBoundaries(t *testing.T) {
	c := Generate(1000, 3)
	if c.BucketOf(c.Videos[0]) != BucketPopular {
		t.Error("rank 1 not popular")
	}
	if c.BucketOf(c.Videos[c.PopularCut]) != BucketModerate {
		t.Error("first post-cut video not moderate")
	}
	if c.BucketOf(c.Videos[len(c.Videos)-1]) != BucketTail {
		t.Error("last video not tail")
	}
}

func TestVCUEraCoversTheTail(t *testing.T) {
	c := Generate(5000, 4)
	m := DefaultEgressModel()
	cpu := Apply(c, PolicyCPUEra, m)
	vcuR := Apply(c, PolicyVCUEra, m)
	// CPU era: only popular videos have VP9.
	if cpu.VP9Videos != c.PopularCut {
		t.Fatalf("CPU era VP9 videos %d, want %d (popular only)", cpu.VP9Videos, c.PopularCut)
	}
	if vcuR.VP9Videos != len(c.Videos) {
		t.Fatalf("VCU era VP9 videos %d, want all %d", vcuR.VP9Videos, len(c.Videos))
	}
	// VP9 watch coverage jumps to the capable-device ceiling.
	if vcuR.VP9WatchShare < m.VP9CapableShare-1e-9 {
		t.Fatalf("VCU era VP9 watch share %.2f, want %.2f", vcuR.VP9WatchShare, m.VP9CapableShare)
	}
	if cpu.VP9WatchShare >= vcuR.VP9WatchShare {
		t.Fatal("CPU era should cover less watch time in VP9")
	}
	// And egress drops.
	saving := EgressSaving(cpu, vcuR)
	if saving <= 0.02 || saving >= m.VP9Saving {
		t.Fatalf("egress saving %.1f%%, want in (2%%, %.0f%%)", saving*100, m.VP9Saving*100)
	}
}

func TestComputeCostStructure(t *testing.T) {
	c := Generate(5000, 5)
	m := DefaultEgressModel()
	cpu := Apply(c, PolicyCPUEra, m)
	vcuR := Apply(c, PolicyVCUEra, m)
	// The VCU era does far more transcode work (VP9 for everything) —
	// which is exactly why it was "computationally infeasible at scale
	// in software" (§4.1) and needed the accelerator.
	if vcuR.TranscodeComputeUnits <= cpu.TranscodeComputeUnits {
		t.Fatal("VCU-era policy should require much more transcode compute")
	}
	ratio := vcuR.TranscodeComputeUnits / cpu.TranscodeComputeUnits
	if ratio < 3 {
		t.Fatalf("compute ratio %.1f, expected several-fold", ratio)
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := Generate(100, 9)
	b := Generate(100, 9)
	for i := range a.Videos {
		if a.Videos[i] != b.Videos[i] {
			t.Fatal("corpus generation not deterministic")
		}
	}
}
