package workload

import (
	"testing"
	"time"
)

func arrivalCfg() ArrivalConfig {
	return ArrivalConfig{
		Seed:             7,
		Horizon:          24 * time.Hour,
		BaseRatePerHour:  600,
		DiurnalAmplitude: 0.5,
		DiurnalPeriod:    24 * time.Hour,
		SpikeStart:       10 * time.Hour,
		SpikeDuration:    time.Hour,
		SpikeFactor:      2,
		LiveShare:        0.2,
		BatchShare:       0.3,
	}
}

func TestArrivalsDeterministic(t *testing.T) {
	a := GenerateArrivals(arrivalCfg())
	b := GenerateArrivals(arrivalCfg())
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	other := arrivalCfg()
	other.Seed = 8
	if c := GenerateArrivals(other); len(c) == len(a) {
		same := true
		for i := range c {
			if c[i] != a[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestArrivalsShape(t *testing.T) {
	cfg := arrivalCfg()
	arr := GenerateArrivals(cfg)
	if len(arr) == 0 {
		t.Fatal("no arrivals")
	}
	last := time.Duration(-1)
	counts := map[ArrivalClass]int{}
	var inSpike, inControl int
	control := cfg.SpikeStart + 4*time.Hour // same diurnal phase region, no spike
	for _, a := range arr {
		if a.At < last {
			t.Fatalf("arrivals out of order at %v", a.At)
		}
		last = a.At
		if a.At >= cfg.Horizon {
			t.Fatalf("arrival beyond horizon: %v", a.At)
		}
		counts[a.Class]++
		if a.At >= cfg.SpikeStart && a.At < cfg.SpikeStart+cfg.SpikeDuration {
			inSpike++
		}
		if a.At >= control && a.At < control+cfg.SpikeDuration {
			inControl++
		}
	}
	for _, cls := range []ArrivalClass{ArriveLive, ArriveUpload, ArriveBatch} {
		if counts[cls] == 0 {
			t.Fatalf("class %v never arrived in %d arrivals", cls, len(arr))
		}
	}
	// The spike window must carry clearly more arrivals than a same-length
	// non-spike window nearby (2x rate; allow slack for diurnal drift and
	// Poisson noise).
	if float64(inSpike) < 1.4*float64(inControl) {
		t.Fatalf("spike window not elevated: %d in spike vs %d in control", inSpike, inControl)
	}
}

func TestArrivalRateAt(t *testing.T) {
	cfg := arrivalCfg()
	base := cfg.RateAt(0) // sin(0) = 0: exactly the base rate
	if base != cfg.BaseRatePerHour {
		t.Fatalf("RateAt(0) = %v, want %v", base, cfg.BaseRatePerHour)
	}
	spike := cfg.RateAt(cfg.SpikeStart + cfg.SpikeDuration/2)
	same := cfg.RateAt(cfg.SpikeStart + cfg.SpikeDuration/2 + cfg.SpikeDuration)
	if spike < 1.5*same {
		t.Fatalf("spike rate %v not elevated over nearby rate %v", spike, same)
	}
	flat := ArrivalConfig{BaseRatePerHour: 100, Horizon: time.Hour}
	if got := flat.RateAt(30 * time.Minute); got != 100 {
		t.Fatalf("flat RateAt = %v, want 100", got)
	}
}
