// Package workload models the platform's video corpus and usage patterns
// (paper §2.2): popularity follows a stretched power law with three
// treatment buckets — the very popular videos that dominate watch time,
// modestly watched videos, and the long tail — and supports the §4.5
// experiment: what fraction of egress can be served in VP9 under the
// CPU-era policy (VP9 only for popular videos, produced in batch after
// upload) versus the VCU-era policy (VP9 for everything at upload time).
package workload

import (
	"math"
	"sort"
)

// Video is one corpus entry.
type Video struct {
	ID int
	// Rank is the popularity rank (1 = most watched).
	Rank int
	// WatchSeconds is total watch time accrued over the study window.
	WatchSeconds float64
	// DurationSeconds is the video length.
	DurationSeconds float64
	// Resolution ladder top (pixels per frame) — popular content skews
	// higher-resolution.
	TopPixels int
}

// Bucket is the §2.2 treatment class.
type Bucket int

// Buckets.
const (
	BucketPopular Bucket = iota
	BucketModerate
	BucketTail
)

// String names the bucket.
func (b Bucket) String() string {
	switch b {
	case BucketPopular:
		return "popular"
	case BucketModerate:
		return "moderate"
	default:
		return "tail"
	}
}

// Corpus is a generated video population.
type Corpus struct {
	Videos []Video
	// PopularCut and ModerateCut are rank boundaries: ranks <= PopularCut
	// are popular; ranks <= ModerateCut are moderate; the rest is tail.
	PopularCut, ModerateCut int
}

// Generate builds an n-video corpus with stretched-power-law watch time:
// watch(r) ∝ exp(-(r/s)^beta) / r^alpha — heavy head, very long tail.
func Generate(n int, seed uint64) *Corpus {
	rng := seed*2 + 1
	next := func() float64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return float64(rng%1e9) / 1e9
	}
	const (
		alpha = 0.8
		beta  = 0.35
	)
	s := float64(n) / 4
	c := &Corpus{PopularCut: maxInt(n/100, 1), ModerateCut: maxInt(n/10, 2)}
	for r := 1; r <= n; r++ {
		watch := math.Exp(-math.Pow(float64(r)/s, beta)) / math.Pow(float64(r), alpha)
		watch *= 1e7 // scale to watch-seconds
		dur := 60 + next()*540
		pixels := 1280 * 720
		if r <= c.PopularCut {
			pixels = 1920 * 1080
		} else if r > c.ModerateCut {
			pixels = 854 * 480
		}
		c.Videos = append(c.Videos, Video{
			ID: r - 1, Rank: r, WatchSeconds: watch,
			DurationSeconds: dur, TopPixels: pixels,
		})
	}
	return c
}

// BucketOf classifies a video.
func (c *Corpus) BucketOf(v Video) Bucket {
	switch {
	case v.Rank <= c.PopularCut:
		return BucketPopular
	case v.Rank <= c.ModerateCut:
		return BucketModerate
	default:
		return BucketTail
	}
}

// TotalWatch returns corpus watch-seconds.
func (c *Corpus) TotalWatch() float64 {
	var t float64
	for _, v := range c.Videos {
		t += v.WatchSeconds
	}
	return t
}

// WatchShare returns the fraction of total watch time accrued by the
// given bucket.
func (c *Corpus) WatchShare(b Bucket) float64 {
	var t float64
	for _, v := range c.Videos {
		if c.BucketOf(v) == b {
			t += v.WatchSeconds
		}
	}
	return t / c.TotalWatch()
}

// --- §4.5 VP9 treatment policies ---------------------------------------------

// Policy decides which videos get VP9 encodings and when.
type Policy int

// Policies.
const (
	// PolicyCPUEra: H.264 for everything at upload; VP9 only for popular
	// videos, produced later on low-cost batch CPU via SOT ("VP9 would
	// only be produced for the most popular videos using low-cost batch
	// CPU after upload", §4.5).
	PolicyCPUEra Policy = iota
	// PolicyVCUEra: both H.264 and VP9 produced at upload time with MOT
	// for every video.
	PolicyVCUEra
)

// EgressModel holds the serving-side constants.
type EgressModel struct {
	// H264BitsPerPixel is the served H.264 bitrate density.
	H264BitsPerPixel float64
	// VP9Saving is VP9's bitrate saving at iso quality (paper: ~30%
	// BD-rate vs H.264).
	VP9Saving float64
	// VP9CapableShare is the fraction of watch time on devices that can
	// decode VP9.
	VP9CapableShare float64
	// FPS of served streams.
	FPS float64
}

// DefaultEgressModel returns plausible serving constants.
func DefaultEgressModel() EgressModel {
	return EgressModel{H264BitsPerPixel: 0.06, VP9Saving: 0.30, VP9CapableShare: 0.8, FPS: 30}
}

// PolicyResult summarizes a policy applied to a corpus.
type PolicyResult struct {
	Policy Policy
	// EgressBits is the total bits served over the window.
	EgressBits float64
	// VP9WatchShare is the fraction of watch time served in VP9.
	VP9WatchShare float64
	// VP9Videos is how many videos have VP9 encodings at all.
	VP9Videos int
	// TranscodeComputeUnits is the relative transcode compute spent
	// (H.264-upload-equivalents; VP9 costs 6.5x on CPU, and the CPU era
	// pays extra SOT re-decodes).
	TranscodeComputeUnits float64
}

// Apply evaluates a policy over the corpus.
func Apply(c *Corpus, p Policy, m EgressModel) PolicyResult {
	res := PolicyResult{Policy: p}
	var vp9Watch float64
	for _, v := range c.Videos {
		hasVP9 := p == PolicyVCUEra || c.BucketOf(v) == BucketPopular
		if hasVP9 {
			res.VP9Videos++
		}
		// Egress: VP9-capable watch time uses VP9 when available.
		px := float64(v.TopPixels)
		h264Rate := m.H264BitsPerPixel * px * m.FPS
		vp9Rate := h264Rate * (1 - m.VP9Saving)
		watchVP9 := 0.0
		if hasVP9 {
			watchVP9 = v.WatchSeconds * m.VP9CapableShare
		}
		watchH264 := v.WatchSeconds - watchVP9
		res.EgressBits += watchVP9*vp9Rate + watchH264*h264Rate
		vp9Watch += watchVP9

		// Transcode compute, in H.264-MOT-upload units.
		const vp9CostFactor = 6.5
		switch p {
		case PolicyVCUEra:
			res.TranscodeComputeUnits += 1 + vp9CostFactor // MOT both formats at upload
		case PolicyCPUEra:
			res.TranscodeComputeUnits += 1 // H.264 at upload
			if hasVP9 {
				// Batch VP9 via SOT: extra re-decodes cost ~1.3x MOT.
				res.TranscodeComputeUnits += vp9CostFactor * 1.3
			}
		}
	}
	res.VP9WatchShare = vp9Watch / c.TotalWatch()
	return res
}

// EgressSaving returns the fractional egress reduction of b vs a.
func EgressSaving(a, b PolicyResult) float64 {
	return 1 - b.EgressBits/a.EgressBits
}

// RankByWatch returns videos sorted by descending watch time (sanity
// helper: Generate already assigns rank = order).
func RankByWatch(c *Corpus) []Video {
	out := append([]Video(nil), c.Videos...)
	sort.Slice(out, func(i, j int) bool { return out[i].WatchSeconds > out[j].WatchSeconds })
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
