package vbench

import (
	"fmt"

	"openvcu/internal/codec"
	"openvcu/internal/codec/rc"
	"openvcu/internal/metrics"
	"openvcu/internal/video"
)

// EncoderUnderTest identifies one encoder configuration in a Figure 7
// style comparison.
type EncoderUnderTest struct {
	Label    string
	Profile  codec.Profile
	Hardware bool // VCU pipeline restrictions vs. software encoder
	Speed    int
	Tuning   int // rate-control tuning level (months post-launch)
	AltRef   bool
	// FlatSearch disables the multi-resolution pyramid motion search,
	// exposing the plain diamond baseline for BD-rate A/B comparisons
	// (cmd/vcubench guards the pyramid's quality with it).
	FlatSearch bool
}

// StandardEncoders are the four curves of Figure 7 at VCU launch: the
// software encoders carry years of rate-control calibration (full
// tuning), while the hardware encoders ship at launch tuning — the gap
// Figure 10 then closes.
var StandardEncoders = []EncoderUnderTest{
	{Label: "libx264-sw", Profile: codec.H264Class, Tuning: rc.MaxTuning},
	{Label: "vcu-h264", Profile: codec.H264Class, Hardware: true, Tuning: 0},
	{Label: "libvpx-sw", Profile: codec.VP9Class, AltRef: true, Tuning: rc.MaxTuning},
	{Label: "vcu-vp9", Profile: codec.VP9Class, Hardware: true, AltRef: true, Tuning: 0},
}

// RunRD encodes the clip at every ladder bitrate with the encoder under
// test and returns its operational RD curve (real encodes: the bitrate is
// what the encoder produced and PSNR is measured on the decoded output).
func RunRD(clip Clip, eut EncoderUnderTest, scale, frames int) (metrics.RDCurve, error) {
	srcCfg := clip.SourceConfig(scale, frames)
	src := video.NewSource(srcCfg).Frames(frames)
	curve := metrics.RDCurve{Label: fmt.Sprintf("%s/%s", clip.Name, eut.Label)}
	seconds := float64(frames) / float64(clip.FPS)
	for _, target := range clip.TargetBitrates(scale) {
		cfg := codec.Config{
			Profile: eut.Profile,
			Width:   srcCfg.Width, Height: srcCfg.Height, FPS: clip.FPS,
			Speed:                eut.Speed,
			Hardware:             eut.Hardware,
			AltRef:               eut.AltRef,
			DisablePyramidSearch: eut.FlatSearch,
			RC: rc.Config{
				Mode:          rc.ModeTwoPassOffline,
				TargetBitrate: target,
				Tuning:        eut.Tuning,
			},
		}
		res, err := codec.EncodeSequence(cfg, src)
		if err != nil {
			return curve, fmt.Errorf("vbench %s @%d: %w", clip.Name, target, err)
		}
		dec, err := codec.DecodeSequence(res.Packets)
		if err != nil {
			return curve, fmt.Errorf("vbench %s @%d decode: %w", clip.Name, target, err)
		}
		curve.Points = append(curve.Points, metrics.RDPoint{
			BitsPerSecond: float64(res.TotalBits) / seconds,
			PSNR:          video.SequencePSNR(src, dec),
		})
	}
	return curve, nil
}
