package vbench

import (
	"testing"

	"openvcu/internal/codec"
	"openvcu/internal/metrics"
)

func TestSuiteShape(t *testing.T) {
	if len(Suite) != 15 {
		t.Fatalf("suite has %d clips, want 15", len(Suite))
	}
	seen := map[string]bool{}
	for _, c := range Suite {
		if seen[c.Name] {
			t.Fatalf("duplicate clip %s", c.Name)
		}
		seen[c.Name] = true
		if c.Resolution.Pixels() == 0 || c.FPS == 0 {
			t.Fatalf("clip %s missing resolution/fps", c.Name)
		}
		if c.Entropy < 0 || c.Entropy > 1 {
			t.Fatalf("clip %s entropy %f", c.Name, c.Entropy)
		}
	}
	if _, ok := ByName("holi"); !ok {
		t.Fatal("holi missing")
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Fatal("phantom clip found")
	}
}

func TestSourceConfigScaling(t *testing.T) {
	c, _ := ByName("landscape") // 2160p native
	cfg := c.SourceConfig(8, 10)
	if cfg.Width%16 != 0 || cfg.Height%16 != 0 {
		t.Fatalf("scaled dims %dx%d not 16-aligned", cfg.Width, cfg.Height)
	}
	if cfg.Width != 480 {
		t.Fatalf("2160p/8 width = %d, want 480", cfg.Width)
	}
	rates := c.TargetBitrates(8)
	if len(rates) != len(TargetBitratesBPP) {
		t.Fatalf("%d target rates", len(rates))
	}
	for i := 1; i < len(rates); i++ {
		if rates[i] <= rates[i-1] {
			t.Fatal("target rates not increasing")
		}
	}
}

func TestClipSeedsDiffer(t *testing.T) {
	a := Suite[0].SourceConfig(8, 1)
	b := Suite[1].SourceConfig(8, 1)
	if a.Seed == b.Seed {
		t.Fatal("clips share a seed")
	}
}

func TestRunRDProducesMonotoneCurve(t *testing.T) {
	clip, _ := ByName("house")
	eut := EncoderUnderTest{Label: "sw-h264", Profile: codec.H264Class, Speed: 2}
	curve, err := RunRD(clip, eut, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve.Points) != len(TargetBitratesBPP) {
		t.Fatalf("%d points", len(curve.Points))
	}
	for i := 1; i < len(curve.Points); i++ {
		if curve.Points[i].PSNR <= curve.Points[i-1].PSNR {
			t.Errorf("PSNR not increasing with bitrate: %+v", curve.Points)
		}
	}
}

func TestEasyClipBeatsHardClip(t *testing.T) {
	// Figure 7's vertical ordering: presentation (easy) sits far above
	// holi (hard) at the same bitrates.
	easy, _ := ByName("presentation")
	hard, _ := ByName("holi")
	eut := EncoderUnderTest{Label: "sw", Profile: codec.H264Class, Speed: 2}
	easyCurve, err := RunRD(easy, eut, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	hardCurve, err := RunRD(hard, eut, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if easyCurve.Points[2].PSNR <= hardCurve.Points[2].PSNR {
		t.Errorf("presentation PSNR %.1f not above holi %.1f",
			easyCurve.Points[2].PSNR, hardCurve.Points[2].PSNR)
	}
}

func TestHardwareRestrictionCostsBitrate(t *testing.T) {
	// Figure 7 / §4.1: VCU encodings trail the software encoder at
	// launch tuning (positive BD-rate vs software).
	clip, _ := ByName("bike")
	sw, err := RunRD(clip, EncoderUnderTest{Label: "sw", Profile: codec.H264Class, Speed: 1}, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := RunRD(clip, EncoderUnderTest{Label: "hw", Profile: codec.H264Class, Hardware: true, Speed: 1}, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	bd, err := metrics.BDRate(sw.Points, hw.Points)
	if err != nil {
		t.Fatal(err)
	}
	if bd < -2 {
		t.Errorf("hardware BD-rate %.1f%% vs software, expected >= ~0 (worse or equal)", bd)
	}
}
