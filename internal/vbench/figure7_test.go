package vbench

import (
	"testing"

	"openvcu/internal/codec"
	"openvcu/internal/codec/rc"
	"openvcu/internal/metrics"
	"openvcu/internal/video"
)

// runMatrix builds RD curves for a set of encoders on one clip.
func runMatrix(t *testing.T, clipName string, frames int, euts []EncoderUnderTest) map[string][]metrics.RDPoint {
	t.Helper()
	clip, ok := ByName(clipName)
	if !ok {
		t.Fatalf("no clip %s", clipName)
	}
	out := map[string][]metrics.RDPoint{}
	for _, e := range euts {
		c, err := RunRD(clip, e, 16, frames)
		if err != nil {
			t.Fatal(err)
		}
		out[e.Label] = c.Points
	}
	return out
}

func bd(t *testing.T, curves map[string][]metrics.RDPoint, ref, test string) float64 {
	t.Helper()
	v, err := metrics.BDRate(curves[ref], curves[test])
	if err != nil {
		t.Fatalf("BD %s->%s: %v", ref, test, err)
	}
	return v
}

// TestFigure7OrderingMatrix asserts the qualitative structure of Figure 7
// and the §4.1 BD-rate comparisons on real encodes:
//
//   - VCU-VP9 needs fewer bits than software H.264 at iso quality
//     (paper: -30%; magnitudes compress on short procedural clips),
//   - both VCU encoders trail their software counterparts at launch
//     tuning (paper: +11.5% H.264, +18% VP9),
//   - the VP9 toolset beats H.264 software-vs-software.
func TestFigure7OrderingMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("long RD matrix")
	}
	curves := runMatrix(t, "bike", 12, StandardEncoders)
	if v := bd(t, curves, "libx264-sw", "vcu-vp9"); v >= 0 {
		t.Errorf("VCU-VP9 vs software H.264 BD-rate %+.1f%%, must be negative (paper -30%%)", v)
	}
	if v := bd(t, curves, "libx264-sw", "vcu-h264"); v < 4 || v > 25 {
		t.Errorf("VCU-H.264 vs libx264 BD-rate %+.1f%%, want ~+11.5%%", v)
	}
	if v := bd(t, curves, "libvpx-sw", "vcu-vp9"); v < 2 || v > 30 {
		t.Errorf("VCU-VP9 vs libvpx BD-rate %+.1f%%, want positive toward +18%%", v)
	}
	if v := bd(t, curves, "libx264-sw", "libvpx-sw"); v >= -5 {
		t.Errorf("software VP9 vs software H.264 BD-rate %+.1f%%, want clearly negative", v)
	}
}

// TestLambdaCalibration pins the RDO lambda at its swept optimum: scale
// 1.0 must be within noise of the best and clearly better than the
// launch setting.
func TestLambdaCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("long calibration sweep")
	}
	clip, _ := ByName("bike")
	srcCfg := clip.SourceConfig(16, 12)
	src := video.NewSource(srcCfg).Frames(12)
	run := func(scale float64) []metrics.RDPoint {
		var pts []metrics.RDPoint
		for _, target := range clip.TargetBitrates(16) {
			cfg := codec.Config{Profile: codec.VP9Class, Width: srcCfg.Width, Height: srcCfg.Height,
				FPS: clip.FPS, RC: rc.Config{Mode: rc.ModeTwoPassOffline, TargetBitrate: target,
					LambdaOverride: scale}}
			res, err := codec.EncodeSequence(cfg, src)
			if err != nil {
				t.Fatal(err)
			}
			dec, err := codec.DecodeSequence(res.Packets)
			if err != nil {
				t.Fatal(err)
			}
			pts = append(pts, metrics.RDPoint{
				BitsPerSecond: float64(res.TotalBits) * float64(clip.FPS) / 12.0,
				PSNR:          video.SequencePSNR(src, dec)})
		}
		return pts
	}
	calibrated := run(1.0)
	if v, err := metrics.BDRate(calibrated, run(0.5)); err != nil || v < 1 {
		t.Errorf("half lambda BD-rate %+.1f%% (err %v), expected clear penalty", v, err)
	}
	if v, err := metrics.BDRate(calibrated, run(1.5)); err != nil || v < -2 || v > 6 {
		t.Errorf("1.5x lambda BD-rate %+.1f%% (err %v), expected near-flat", v, err)
	}
}

// TestRDOQHelpsAtIsoLambda verifies that the software-only RD-optimized
// quantization is a genuine quality tool: removing it (the Hardware flag)
// costs bitrate at the same lambda, most visibly for the H.264-class
// profile's static entropy contexts (the Trellis gap of §4.1).
func TestRDOQHelpsAtIsoLambda(t *testing.T) {
	if testing.Short() {
		t.Skip("long RD comparison")
	}
	euts := []EncoderUnderTest{
		{Label: "sw", Profile: codec.H264Class, Tuning: rc.MaxTuning},
		{Label: "hw", Profile: codec.H264Class, Hardware: true, Tuning: rc.MaxTuning},
	}
	curves := runMatrix(t, "bike", 12, euts)
	if v := bd(t, curves, "sw", "hw"); v < 3 {
		t.Errorf("hardware (no RDOQ) BD-rate %+.1f%% vs software at iso tuning, want clear penalty", v)
	}
}

// TestFullSuiteEncodes is the 15-clip regression: every clip in the suite
// must encode and decode at every ladder bitrate for the flagship
// encoder, with PSNR increasing in bitrate.
func TestFullSuiteEncodes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite sweep")
	}
	eut := EncoderUnderTest{Label: "vcu-vp9", Profile: codec.VP9Class,
		Hardware: true, AltRef: true}
	for _, clip := range Suite {
		curve, err := RunRD(clip, eut, 16, 4)
		if err != nil {
			t.Fatalf("%s: %v", clip.Name, err)
		}
		// Rate control on 4-frame micro-clips is noisy at the extreme
		// low end, so assert the endpoints: the top of the ladder must
		// clearly beat the bottom.
		lo := curve.Points[0]
		hi := curve.Points[len(curve.Points)-1]
		if hi.PSNR <= lo.PSNR {
			t.Errorf("%s: top-rate PSNR %.2f not above low-rate %.2f",
				clip.Name, hi.PSNR, lo.PSNR)
		}
	}
}

// TestAV1BeatsOrMatchesVP9 pins the future-work profile's value: the
// AV1-class software encoder must not be worse than VP9-class software
// at iso settings (its extra tools — loop restoration, 128px superblocks
// — should pay or at least not hurt).
func TestAV1BeatsOrMatchesVP9(t *testing.T) {
	if testing.Short() {
		t.Skip("long RD comparison")
	}
	euts := []EncoderUnderTest{
		{Label: "vp9", Profile: codec.VP9Class, AltRef: true, Tuning: rc.MaxTuning},
		{Label: "av1", Profile: codec.AV1Class, AltRef: true, Tuning: rc.MaxTuning},
	}
	curves := runMatrix(t, "holi", 8, euts) // noisy clip: restoration territory
	v := bd(t, curves, "vp9", "av1")
	t.Logf("AV1 vs VP9 BD-rate on holi: %+.1f%%", v)
	// At 1/16-scale frames a 128px superblock is the whole picture, so
	// the AV1-class partition overhead dominates its gains; the bound
	// only guards against real regressions.
	if v > 10 {
		t.Errorf("AV1-class BD-rate %+.1f%% vs VP9-class — future-work profile regressed", v)
	}
}
