// Package vbench defines the synthetic stand-in for the vbench benchmark
// suite (Lottarini et al., ASPLOS'18) used throughout the paper's
// evaluation: "15 representative videos grouped across a 3-dimensional
// space defined by resolution, frame rate, and entropy" (§4.1). Each clip
// here is a deterministic procedural source whose position in that space
// mirrors the published clip's character (screen content is easy, holi's
// festival-of-colors motion is brutal).
package vbench

import (
	"openvcu/internal/video"
)

// Clip is one suite entry.
type Clip struct {
	Name string
	// Resolution and FPS place the clip on two of the suite's axes.
	Resolution video.Resolution
	FPS        int
	// Entropy in [0,1] summarizes coding difficulty (the third axis).
	Entropy float64
	// Source-shape parameters (see video.SourceConfig).
	Detail, Motion, ObjectMotion float64
	Objects, Noise               int
	SceneCut                     int
}

// Suite is the 15-clip set, named after Figure 7's legend. Entropy rises
// roughly down the list, matching the top-to-bottom RD curve ordering of
// the figure (presentation/desktop easiest, holi hardest).
var Suite = []Clip{
	{Name: "presentation", Resolution: video.Res1080p, FPS: 30, Entropy: 0.05, Detail: 0.15, Motion: 0.0, Objects: 0},
	{Name: "desktop", Resolution: video.Res1080p, FPS: 30, Entropy: 0.08, Detail: 0.25, Motion: 0.0, Objects: 1, ObjectMotion: 1},
	{Name: "bike", Resolution: video.Res720p, FPS: 30, Entropy: 0.35, Detail: 0.45, Motion: 1.5, Objects: 2, ObjectMotion: 2},
	{Name: "funny", Resolution: video.Res480p, FPS: 30, Entropy: 0.30, Detail: 0.40, Motion: 1.0, Objects: 2, ObjectMotion: 2, SceneCut: 48},
	{Name: "house", Resolution: video.Res720p, FPS: 30, Entropy: 0.25, Detail: 0.50, Motion: 0.5, Objects: 1, ObjectMotion: 1},
	{Name: "cricket", Resolution: video.Res720p, FPS: 50, Entropy: 0.45, Detail: 0.45, Motion: 2.5, Objects: 3, ObjectMotion: 3},
	{Name: "girl", Resolution: video.Res1080p, FPS: 24, Entropy: 0.35, Detail: 0.55, Motion: 1.0, Objects: 1, ObjectMotion: 2},
	{Name: "game_1", Resolution: video.Res720p, FPS: 60, Entropy: 0.50, Detail: 0.55, Motion: 3.0, Objects: 3, ObjectMotion: 4},
	{Name: "chicken", Resolution: video.Res1080p, FPS: 30, Entropy: 0.55, Detail: 0.60, Motion: 1.5, Objects: 3, ObjectMotion: 3, Noise: 3},
	{Name: "hall", Resolution: video.Res720p, FPS: 30, Entropy: 0.40, Detail: 0.55, Motion: 1.0, Objects: 2, ObjectMotion: 2},
	{Name: "game_2", Resolution: video.Res1080p, FPS: 60, Entropy: 0.60, Detail: 0.60, Motion: 3.5, Objects: 4, ObjectMotion: 4},
	{Name: "cat", Resolution: video.Res480p, FPS: 30, Entropy: 0.50, Detail: 0.70, Motion: 1.5, Objects: 2, ObjectMotion: 3, Noise: 2},
	{Name: "landscape", Resolution: video.Res2160p, FPS: 30, Entropy: 0.45, Detail: 0.75, Motion: 0.8, Objects: 0, Noise: 1},
	{Name: "game_3", Resolution: video.Res1080p, FPS: 60, Entropy: 0.70, Detail: 0.65, Motion: 4.5, Objects: 4, ObjectMotion: 5, SceneCut: 60},
	{Name: "holi", Resolution: video.Res1080p, FPS: 30, Entropy: 0.95, Detail: 0.80, Motion: 5.0, Objects: 6, ObjectMotion: 6, Noise: 6},
}

// ByName returns a clip by name.
func ByName(name string) (Clip, bool) {
	for _, c := range Suite {
		if c.Name == name {
			return c, true
		}
	}
	return Clip{}, false
}

// SourceConfig builds the procedural source for the clip at a reduced
// scale (scale=1 is native; scale=8 divides each dimension by 8, keeping
// 16-pixel alignment). Quality experiments run at reduced scale so a pure
// Go encoder can sweep the whole suite; the *relative* RD behavior across
// clips and profiles is what the reproduction asserts.
func (c Clip) SourceConfig(scale, frames int) video.SourceConfig {
	w := align16(c.Resolution.Width / scale)
	h := align16(c.Resolution.Height / scale)
	// Motion scales with resolution so the content keeps its character.
	ms := 1.0 / float64(scale)
	return video.SourceConfig{
		Name: c.Name, Width: w, Height: h, FPS: c.FPS, Frames: frames,
		Seed:   seedOf(c.Name),
		Detail: c.Detail, Motion: c.Motion * ms, ObjectMotion: c.ObjectMotion * ms,
		Objects: c.Objects, Noise: c.Noise, SceneCut: c.SceneCut,
	}
}

// TargetBitratesBPP is the per-pixel bitrate ladder (bits per pixel, at
// the clip frame rate) used to trace RD curves like Figure 7. Harder
// clips are encoded at the same bpp points; their curves land lower.
var TargetBitratesBPP = []float64{0.015, 0.03, 0.06, 0.12, 0.24}

// TargetBitrates returns the absolute target bitrates (bits/s) for the
// clip at the given scale.
func (c Clip) TargetBitrates(scale int) []int {
	cfg := c.SourceConfig(scale, 1)
	px := float64(cfg.Width * cfg.Height)
	var out []int
	for _, bpp := range TargetBitratesBPP {
		out = append(out, int(bpp*px*float64(c.FPS)))
	}
	return out
}

func align16(v int) int {
	v = v / 16 * 16
	if v < 32 {
		v = 32
	}
	return v
}

func seedOf(name string) uint64 {
	var h uint64 = 1469598103934665603
	for _, b := range []byte(name) {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}
