// Ablation benchmarks for the co-design choices the paper highlights:
// what each mechanism buys, measured by turning it off.
package openvcu_test

import (
	"testing"
	"time"

	"openvcu/internal/cluster"
	"openvcu/internal/codec"
	"openvcu/internal/codec/rc"
	"openvcu/internal/sim"
	"openvcu/internal/vcu"
	"openvcu/internal/video"
)

// BenchmarkAblation_TileColumns measures the wall-clock effect of
// parallel tile columns (the hardware's tile organization, §3.2,
// exploited by the software encoder for intra-frame parallelism) and the
// compression tax tiles cost. The speedup scales with available cores
// (~1.0x on a single-core runner; tiles encode on goroutines).
func BenchmarkAblation_TileColumns(b *testing.B) {
	frames := video.NewSource(video.SourceConfig{
		Width: 512, Height: 128, Seed: 51, Detail: 0.6, Motion: 1.5, Objects: 2,
	}).Frames(3)
	bits := map[int]int{}
	elapsed := map[int]time.Duration{}
	for _, tiles := range []int{1, 4} {
		cfg := codec.Config{Profile: codec.VP9Class, Width: 512, Height: 128,
			TileColumns: tiles, RC: rc.Config{BaseQP: 34}}
		start := time.Now()
		for i := 0; i < b.N; i++ {
			res, err := codec.EncodeSequence(cfg, frames)
			if err != nil {
				b.Fatal(err)
			}
			bits[tiles] = res.TotalBits
		}
		elapsed[tiles] = time.Since(start)
	}
	b.ReportMetric(float64(elapsed[1])/float64(elapsed[4]), "x-speedup-4tiles")
	b.ReportMetric(float64(bits[4])/float64(bits[1])*100-100, "%-bitrate-tax-4tiles")
}

// BenchmarkAblation_FBC measures what frame buffer compression buys the
// chip: realtime throughput with and without the reference-bandwidth
// savings (§3.2: ~50% reference read reduction keeps 10 realtime cores
// inside the 36 GiB/s budget).
func BenchmarkAblation_FBC(b *testing.B) {
	run := func(fbcBytes float64) float64 {
		p := vcu.DefaultParams()
		p.EncodeBytesPerPixelFBC = fbcBytes
		// Drive the 10 encoder cores directly at realtime rate (the
		// §3.3.1 arithmetic): without FBC their aggregate DRAM demand
		// exceeds the 36 GiB/s budget and the fluid model throttles them.
		eng := sim.NewEngine()
		v := vcu.New(eng, 0, p)
		q := v.OpenQueue()
		var encoded int64
		var submit func()
		submit = func() {
			op := &vcu.Op{Kind: vcu.OpEncode, Profile: codec.VP9Class,
				Mode: vcu.EncodeOnePassLowLatency, Pixels: int64(p.RealtimeEncodePixRate / 10),
				Done: func(error, bool) {
					encoded += int64(p.RealtimeEncodePixRate / 10)
					submit()
				}}
			_ = q.RunOnCore(op)
		}
		for i := 0; i < p.EncoderCores*2; i++ {
			submit()
		}
		eng.RunUntil(30 * time.Second)
		return float64(encoded) / 30 / 1e6
	}
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = run(vcu.DefaultParams().EncodeBytesPerPixelFBC)
		without = run(vcu.DefaultParams().EncodeBytesPerPixel)
	}
	b.ReportMetric(with, "Mpix/s-realtime-withFBC")
	b.ReportMetric(without, "Mpix/s-realtime-noFBC")
}

// BenchmarkAblation_Scheduler measures the §3.3.3 scheduler change:
// makespan of 400 live 240p streams under the legacy single-slot model
// vs multi-dimensional bin-packing.
func BenchmarkAblation_Scheduler(b *testing.B) {
	run := func(legacy bool) time.Duration {
		cfg := cluster.DefaultConfig(1)
		cfg.LegacySingleSlot = legacy
		c := cluster.New(cfg)
		done := 0
		var last time.Duration
		for i := 0; i < 400; i++ {
			g := cluster.BuildGraph(cluster.VideoSpec{
				ID: i, Resolution: video.Res240p, FPS: 30, Frames: 150, ChunkFrames: 150,
				Profile: codec.VP9Class, Mode: vcu.EncodeTwoPassLagged, Live: true}, 0)
			g.OnDone = func(*cluster.Graph) {
				done++
				last = c.Eng.Now()
			}
			c.Submit(g)
		}
		c.Eng.RunUntil(time.Hour)
		return last
	}
	var slot, packed time.Duration
	for i := 0; i < b.N; i++ {
		slot = run(true)
		packed = run(false)
	}
	b.ReportMetric(slot.Seconds(), "s-makespan-singleslot")
	b.ReportMetric(packed.Seconds(), "s-makespan-binpacking")
}

// BenchmarkAblation_ConsistentHashing measures the §4.4 future-work
// placement: how many of 40 videos ever touch one corrupting VCU with
// first-fit vs per-video affinity sets.
func BenchmarkAblation_ConsistentHashing(b *testing.B) {
	run := func(hashing bool) int {
		cfg := cluster.DefaultConfig(1)
		cfg.ConsistentHashing = hashing
		cfg.GoldenCheckOnStart = false
		cfg.AbortOnFailure = false
		cfg.IntegrityCheckProb = 0
		cfg.DisableFaultThreshold = 1 << 30
		c := cluster.New(cfg)
		bad := c.Hosts[0].VCUs[0]
		bad.InjectFault(vcu.FaultCorrupt, 0)
		var graphs []*cluster.Graph
		for i := 0; i < 40; i++ {
			i := i
			c.Eng.Schedule(time.Duration(i)*15*time.Second, func() {
				g := cluster.BuildGraph(cluster.VideoSpec{
					ID: i, Resolution: video.Res1080p, FPS: 30, Frames: 600, ChunkFrames: 150,
					Profile: codec.VP9Class, Mode: vcu.EncodeTwoPassOffline, MOT: true}, 10)
				graphs = append(graphs, g)
				c.Submit(g)
			})
		}
		c.Eng.RunUntil(3 * time.Hour)
		touched := 0
		for _, g := range graphs {
			hit := false
			for _, s := range g.Steps {
				for _, id := range s.RanOnVCU {
					if id == bad.ID {
						hit = true
					}
				}
			}
			if hit {
				touched++
			}
		}
		return touched
	}
	var spread, bounded int
	for i := 0; i < b.N; i++ {
		spread = run(false)
		bounded = run(true)
	}
	b.ReportMetric(float64(spread), "videos-touched-firstfit")
	b.ReportMetric(float64(bounded), "videos-touched-hashed")
}

// BenchmarkAblation_AltRef measures the temporal-filter alternate
// reference on noisy content: PSNR delta at matched base QP (§3.2 calls
// temporal filtering "an optimization that we added given the more
// relaxed die-area constraints").
func BenchmarkAblation_AltRef(b *testing.B) {
	frames := video.NewSource(video.SourceConfig{
		Width: 96, Height: 64, Seed: 14, Detail: 0.4, Motion: 0.5, Noise: 12}).Frames(10)
	var onPSNR, offPSNR float64
	for i := 0; i < b.N; i++ {
		base := codec.Config{Profile: codec.VP9Class, Width: 96, Height: 64, ArfPeriod: 5,
			RC: rc.Config{BaseQP: 36}}
		withArf := base
		withArf.AltRef = true
		off, err := codec.EncodeSequence(base, frames)
		if err != nil {
			b.Fatal(err)
		}
		on, err := codec.EncodeSequence(withArf, frames)
		if err != nil {
			b.Fatal(err)
		}
		offDec, _ := codec.DecodeSequence(off.Packets)
		onDec, _ := codec.DecodeSequence(on.Packets)
		offPSNR = video.SequencePSNR(frames, offDec)
		onPSNR = video.SequencePSNR(frames, onDec)
	}
	b.ReportMetric(onPSNR-offPSNR, "dB-altref-gain")
}

// BenchmarkAblation_PipelineFIFO measures the §3.2 FIFO-decoupling design
// point on the encoder-core micro-model: sustained rate with lock-step
// stages vs the production FIFO depth.
func BenchmarkAblation_PipelineFIFO(b *testing.B) {
	var lock, deep float64
	for i := 0; i < b.N; i++ {
		l := vcu.DefaultPipelineConfig()
		l.FIFODepth = 1
		d := vcu.DefaultPipelineConfig()
		lock = vcu.SimulatePipeline(l, 20000).PixPerSec / 1e6
		deep = vcu.SimulatePipeline(d, 20000).PixPerSec / 1e6
	}
	b.ReportMetric(lock, "Mpix/s-lockstep")
	b.ReportMetric(deep, "Mpix/s-fifo8")
}
