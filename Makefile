# Tier-1 verification targets. `make check` is the full CI gate;
# `make lint` and `make race` run the two project-specific slices on
# their own.

GO ?= go
RACE_PKGS = ./internal/sched ./internal/transcode ./internal/cluster ./internal/codec ./internal/video

.PHONY: check lint lint-json race build test fmt bench chaos fuzz overload autoscale audit

check:
	./scripts/check.sh

# Tracked hot-path benchmarks: kernel microbenchmarks plus the
# cmd/vcubench workloads, rewriting BENCH_codec.json.
bench:
	./scripts/bench.sh

# LINT_PAR: packages analyzed concurrently (0 = GOMAXPROCS); output is
# deterministic at any setting.
LINT_PAR ?= 0

lint:
	$(GO) run ./cmd/vculint -par $(LINT_PAR) ./...

# Machine-readable lint report, same shape CI uploads from check.sh
# (diagnostics plus the per-rule and summary-build timing envelope).
lint-json:
	$(GO) run ./cmd/vculint -json -timing -par $(LINT_PAR) ./... >lint_report.json

race:
	$(GO) test -race $(RACE_PKGS)

# Long-schedule deterministic chaos run (§4.4 fault lifecycle): more
# videos, faults and host crashes than the tier-1 variant, under -race,
# printing the invariant summary (watchdog fires, hedges, repair cycle,
# failure classes).
chaos:
	CHAOS_LONG=1 $(GO) test -race -v -run 'TestChaos' ./internal/cluster

# Long deterministic overload game-day: the 2× demand spike over a
# chaos schedule repeated across several brownout/recovery cycles,
# under -race, plus the fleetsim goodput and fleet-loss curves. The
# tier-1 gate runs the single-cycle variant.
overload:
	OVERLOAD_LONG=1 $(GO) test -race -v -run 'TestOverload|TestAdmission|TestBrownout|TestHedgeGuard|TestLiveDeadline|TestRegionSheds' ./internal/cluster
	$(GO) test -race -v -run 'TestGoodput|TestSLOVs|TestOverloadCurves' ./internal/fleetsim

# Autoscaling verification: the controller-interaction game-day (the
# autoscaler and the brownout ladder sharing the backlog signal without
# oscillating), the capacity-model units and the sched resize
# primitives under -race, plus the fleetsim cost-vs-SLO frontier. The
# tier-1 gate runs the game-day and determinism check as its smoke.
autoscale:
	$(GO) test -race -v -run 'TestAutoscale|TestCapacityModel|TestPredictedQueue|TestRequiredWorkers|TestBrownoutHolds|TestRebalanceStands|TestDrainBeforeRemove|TestCancelDrain|TestActivateAfterRetire|TestScaleFromZero|TestStaleRelease' ./internal/cluster ./internal/sched
	$(GO) test -race -v -run 'TestCostVsSLOFrontier|TestFrontierDeterministic' ./internal/fleetsim

# Silent-corruption defense verification: the audit game-day (an
# intermittent corrupter demoted, convicted and recalled with zero
# false convictions), the hedge-laundering regression, the container
# chunk-checksum tamper tests, all under -race, plus the fleetsim
# escapes-vs-audit-budget frontier. The tier-1 gate runs the game-day
# and determinism check as its smoke.
audit:
	$(GO) test -race -v -run 'TestAudit|TestHedgeDoesNotLaunderCorruption|TestIntermittent|TestExtendedCheck|TestRegionAuditRollUp|TestAccumulateAuditStats' ./internal/cluster ./internal/vcu
	$(GO) test -race -v -run 'TestChunkChecksum' ./internal/container
	$(GO) test -race -v -run 'TestEscapesVsAuditBudgetFrontier|TestAuditFrontierDeterministic' ./internal/fleetsim

# Extended decoder fuzzing (the gate runs a 10s smoke).
fuzz:
	$(GO) test -fuzz=FuzzDecode -fuzztime=2m -run=NONE ./internal/codec

build:
	$(GO) build ./...

test:
	$(GO) test ./...

fmt:
	gofmt -w .
