// Command vbench runs the paper's §4.1 benchmarking methodology: Table 1
// (throughput and perf/TCO for the four systems) and Figure 7 (rate-
// distortion curves and BD-rates for the vbench suite across the four
// encoders). Quality numbers come from real encodes with the Go codec;
// throughput comes from the discrete-event VCU model.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"openvcu/internal/metrics"
	"openvcu/internal/tco"
	"openvcu/internal/vbench"
	"openvcu/internal/vcu"
)

func main() {
	table1 := flag.Bool("table1", false, "print only Table 1")
	rd := flag.Bool("rd", false, "print only the Figure 7 RD data")
	scale := flag.Int("scale", 16, "clip downscale factor for quality runs")
	frames := flag.Int("frames", 5, "frames per clip for quality runs")
	clips := flag.String("clips", "presentation,bike,holi", "comma-separated clip subset (or 'all')")
	flag.Parse()
	all := !*table1 && !*rd

	if all || *table1 {
		printTable1()
	}
	if all || *rd {
		printRD(*clips, *scale, *frames)
	}
}

func printTable1() {
	fmt.Println("== Table 1: offline two-pass single output (SOT) throughput ==")
	fmt.Printf("%-12s %12s %12s %12s %12s\n", "System", "H.264 Mpix/s", "VP9 Mpix/s", "H.264 p/TCO", "VP9 p/TCO")
	rows := tco.Table1(tco.DefaultConstants(), vcu.DefaultParams(), 120*time.Second)
	for _, r := range rows {
		vp9t, vp9p := "-", "-"
		if r.ThroughputVP9 > 0 {
			vp9t = fmt.Sprintf("%.0f", r.ThroughputVP9)
			vp9p = fmt.Sprintf("%.1fx", r.PerfTCOVP9)
		}
		fmt.Printf("%-12s %12.0f %12s %11.1fx %12s\n",
			r.System, r.ThroughputH264, vp9t, r.PerfTCOH264, vp9p)
	}
	pw := tco.PerfWatt(tco.DefaultConstants(), vcu.DefaultParams(), 120*time.Second)
	fmt.Printf("perf/watt vs CPU: %.1fx (SOT H.264, paper 6.7x), %.1fx (MOT VP9, paper 68.9x)\n\n",
		pw.SOTH264Ratio, pw.MOTVP9Ratio)
}

func printRD(clipList string, scale, frames int) {
	var selected []vbench.Clip
	if clipList == "all" {
		selected = vbench.Suite
	} else {
		for _, name := range strings.Split(clipList, ",") {
			c, ok := vbench.ByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown clip %q\n", name)
				os.Exit(2)
			}
			selected = append(selected, c)
		}
	}
	fmt.Printf("== Figure 7: RD curves (scale 1/%d, %d frames) ==\n", scale, frames)
	curves := map[string]map[string][]metrics.RDPoint{} // clip -> encoder -> points
	for _, clip := range selected {
		curves[clip.Name] = map[string][]metrics.RDPoint{}
		for _, eut := range vbench.StandardEncoders {
			curve, err := vbench.RunRD(clip, eut, scale, frames)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			curves[clip.Name][eut.Label] = curve.Points
			for _, p := range curve.Points {
				fmt.Printf("%-14s %-12s %9.0f bps  %6.2f dB\n", clip.Name, eut.Label, p.BitsPerSecond, p.PSNR)
			}
		}
	}
	fmt.Println("\n== BD-rate summary (negative = fewer bits at same quality) ==")
	report := func(label, ref, test string, paper string) {
		var sum float64
		var n int
		for _, clip := range selected {
			bd, err := metrics.BDRate(curves[clip.Name][ref], curves[clip.Name][test])
			if err != nil {
				continue
			}
			sum += bd
			n++
		}
		if n > 0 {
			fmt.Printf("%-28s %+7.1f%%   (paper: %s)\n", label, sum/float64(n), paper)
		}
	}
	report("VCU-VP9 vs soft-H.264", "libx264-sw", "vcu-vp9", "-30%")
	report("VCU-H.264 vs libx264", "libx264-sw", "vcu-h264", "+11.5% at launch")
	report("VCU-VP9 vs libvpx", "libvpx-sw", "vcu-vp9", "+18% at launch")
}
