// Command workload prints the §2.2 usage-pattern analysis and the §4.5
// VP9 treatment comparison: how the stretched-power-law corpus splits
// into treatment buckets, and what moving VP9 production from
// popular-only batch CPU to at-upload VCU MOT does to egress and compute.
package main

import (
	"flag"
	"fmt"

	"openvcu/internal/workload"
)

func main() {
	n := flag.Int("videos", 20000, "corpus size")
	seed := flag.Uint64("seed", 1, "corpus seed")
	flag.Parse()

	c := workload.Generate(*n, *seed)
	fmt.Printf("== §2.2 usage patterns: %d-video stretched-power-law corpus ==\n", *n)
	counts := map[workload.Bucket]int{}
	for _, v := range c.Videos {
		counts[c.BucketOf(v)]++
	}
	for _, b := range []workload.Bucket{workload.BucketPopular, workload.BucketModerate, workload.BucketTail} {
		fmt.Printf("%-9s %6d videos (%4.1f%%)  %5.1f%% of watch time\n",
			b, counts[b], 100*float64(counts[b])/float64(*n), 100*c.WatchShare(b))
	}

	m := workload.DefaultEgressModel()
	cpu := workload.Apply(c, workload.PolicyCPUEra, m)
	vcu := workload.Apply(c, workload.PolicyVCUEra, m)
	fmt.Println("\n== §4.5: enabling otherwise-infeasible VP9 compression ==")
	fmt.Printf("%-34s %14s %14s\n", "", "CPU era", "VCU era")
	fmt.Printf("%-34s %14s %14s\n", "VP9 policy", "popular, batch", "all, at upload")
	fmt.Printf("%-34s %13.1f%% %13.1f%%\n", "videos with VP9",
		100*float64(cpu.VP9Videos)/float64(*n), 100*float64(vcu.VP9Videos)/float64(*n))
	fmt.Printf("%-34s %13.1f%% %13.1f%%\n", "watch time served in VP9",
		100*cpu.VP9WatchShare, 100*vcu.VP9WatchShare)
	fmt.Printf("%-34s %14s %+13.1f%%\n", "egress vs CPU era", "baseline",
		-100*workload.EgressSaving(cpu, vcu))
	fmt.Printf("%-34s %14s %13.1fx\n", "transcode compute", "baseline",
		vcu.TranscodeComputeUnits/cpu.TranscodeComputeUnits)
	fmt.Println("\nThe VCU-era policy needs several times the transcode compute —")
	fmt.Println("\"computationally infeasible at scale in software\" (§4.1) and the")
	fmt.Println("reason the accelerator exists.")
}
