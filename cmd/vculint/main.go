// Command vculint runs the project's zero-dependency static-analysis
// suite (internal/lint) over the module tree and exits non-zero when
// any rule fires.
//
// Usage:
//
//	vculint [flags] [./... | dir ...]
//
// Flags:
//
//	-json        emit diagnostics as a JSON array (machine-readable,
//	             consumed by fleetsim/bench tooling and written to
//	             lint_report.json by scripts/check.sh)
//	-timing      include per-rule wall time; with -json the output
//	             becomes {"diagnostics": [...], "timing": {...}} so
//	             scripts/check.sh can enforce the lint latency budget
//	-rules a,b   run only the named analyzers
//	-list        print registered analyzers and exit
//	-par N       analyze N packages concurrently (0 = GOMAXPROCS);
//	             output is deterministic at any worker count
//
// Syntactic analyzers (PR 1): determinism, hotalloc, errdrop, bigcopy.
//
// Dataflow analyzers (PR 2, built on the type-aware layer in
// internal/lint/dataflow.go):
//
//	scratchshare  a *motion.Scratch / *predict.NeighborBuf parameter
//	              must not escape the callee (stored, returned, sent,
//	              captured by a goroutine, or passed to a callee that
//	              transitively lets its parameter escape)
//	sharedmut     reference-slot frame/pyramid caches are written only
//	              inside constructor/build functions; everywhere else
//	              tile workers share them read-only
//	swarwidth     in internal/codec/motion and internal/bits: constant
//	              shifts past the operand width, 64-bit masks that are
//	              not byte/16/32-bit lane-periodic, and narrowing
//	              conversions of SWAR lane accumulators
//	goleak        a go statement in the scheduling/transcode/cluster/
//	              codec packages must be joined in the spawning
//	              function (WaitGroup or channel); resolved calls whose
//	              transitive summary spawns an unjoined goroutine are
//	              flagged at the call site
//
// Control-flow/call-graph analyzers (PR 3; PR 8 replaced the one-level
// summaries with transitive fixed-point summaries over the SCC
// condensation of the module call graph — see internal/lint/scc.go and
// internal/lint/callgraph.go):
//
//	lockhygiene   path-sensitive: every acquired mutex is released on
//	              every path to the exit (a defer only covers the paths
//	              that execute it), re-locking a held mutex and
//	              unlocking an unheld one are flagged
//	lockorder     two mutex classes acquired in both orders across
//	              cluster/sched/vcu — the deadlock precondition —
//	              chased through any depth of resolved module calls,
//	              with the discovery chain shown in the message
//	waitbalance   WaitGroup Add must be guaranteed before the spawn,
//	              Done must be reached on every path of the spawned
//	              body (directly or in a `go helper(&wg)` helper), and
//	              Add inside the spawned goroutine races Wait
//	heldblock     channel send/receive, blocking select, range over a
//	              channel, Wait, or a resolved call reaching any of
//	              these through any chain of resolved callees, while a
//	              mutex is held on some path
//
// Resource and capture analyzers (PR 8, built on the transitive
// summaries):
//
//	closecheck    a local built by a constructor that returns a fresh
//	              Closer-bearing type (codec.NewEncoder, vcu queues)
//	              must be Closed on every normal exit path once used;
//	              ownership transfers silence the obligation
//	parcapture    closures that outlive their loop iteration capturing
//	              a shared loop variable, and goroutines in loops
//	              writing captured state without a lock
//
// A function whose recursive call cycle hits the summary iteration cap
// is reported under the pseudo-rule "lintbudget" (its facts stay sound
// but may be incomplete) rather than silently under-analyzed.
//
// Useful selections:
//
//	vculint -rules lockorder,waitbalance,heldblock ./...
//	vculint -par 8 -rules closecheck,parcapture ./...
//
// Exit codes: 0 clean, 1 findings, 2 usage or I/O error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"openvcu/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("vculint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON")
	timing := fs.Bool("timing", false, "report per-rule wall time (with -json: envelope with a timing object)")
	rules := fs.String("rules", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list registered analyzers and exit")
	par := fs.Int("par", 0, "packages analyzed concurrently (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.All()
	if *rules != "" {
		analyzers = nil
		for _, name := range strings.Split(*rules, ",") {
			name = strings.TrimSpace(name)
			a := lint.Lookup(name)
			if a == nil {
				fmt.Fprintf(stderr, "vculint: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "vculint:", err)
		return 2
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "vculint:", err)
		return 2
	}

	// Positional arguments: "./..." (or none) means the whole module;
	// anything else is a directory restriction relative to the module
	// root.
	var dirs []string
	for _, arg := range fs.Args() {
		if arg == "./..." || arg == "..." || arg == "." {
			dirs = nil
			break
		}
		clean := filepath.ToSlash(filepath.Clean(strings.TrimSuffix(arg, "/...")))
		clean = strings.TrimPrefix(clean, "./")
		abs := clean
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(cwd, clean)
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			fmt.Fprintf(stderr, "vculint: %s is outside the module\n", arg)
			return 2
		}
		if fi, err := os.Stat(abs); err != nil || !fi.IsDir() {
			fmt.Fprintf(stderr, "vculint: %s is not a directory\n", arg)
			return 2
		}
		dirs = append(dirs, filepath.ToSlash(rel))
	}

	diags, report, err := lint.RunReport(lint.Config{Root: root, Analyzers: analyzers, Dirs: dirs, Workers: *par})
	if err != nil {
		fmt.Fprintln(stderr, "vculint:", err)
		return 2
	}

	// Report paths relative to the invocation directory, the way go
	// vet does, so editors can jump to them.
	for i := range diags {
		if rel, err := filepath.Rel(cwd, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = rel
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		// The bare -json output stays a plain Diagnostic array for
		// existing consumers; the timing envelope is opt-in.
		var payload any = diags
		if *timing {
			payload = struct {
				Diagnostics []lint.Diagnostic `json:"diagnostics"`
				Timing      *lint.Timing      `json:"timing"`
			}{diags, report}
		}
		if err := enc.Encode(payload); err != nil {
			fmt.Fprintln(stderr, "vculint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
		if *timing {
			names := make([]string, 0, len(report.RulesMS))
			for name := range report.RulesMS {
				names = append(names, name)
			}
			sort.Strings(names)
			fmt.Fprintf(stdout, "timing: load %.1fms\n", report.LoadMS)
			fmt.Fprintf(stdout, "timing: summaries %.1fms\n", report.SummaryMS)
			for _, name := range names {
				fmt.Fprintf(stdout, "timing: %-13s %.1fms\n", name, report.RulesMS[name])
			}
			fmt.Fprintf(stdout, "timing: total %.1fms\n", report.TotalMS)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "vculint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}
