// Command vculint runs the project's zero-dependency static-analysis
// suite (internal/lint) over the module tree and exits non-zero when
// any rule fires.
//
// Usage:
//
//	vculint [flags] [./... | dir ...]
//
// Flags:
//
//	-json        emit diagnostics as a JSON array (machine-readable,
//	             consumed by fleetsim/bench tooling and written to
//	             lint_report.json by scripts/check.sh)
//	-rules a,b   run only the named analyzers
//	-list        print registered analyzers and exit
//
// Syntactic analyzers (PR 1): determinism, lockhygiene, hotalloc,
// errdrop, bigcopy.
//
// Dataflow analyzers (PR 2, built on the type-aware layer in
// internal/lint/dataflow.go):
//
//	scratchshare  a *motion.Scratch / *predict.NeighborBuf parameter
//	              must not escape the callee (stored, returned, sent,
//	              or captured by a goroutine)
//	sharedmut     reference-slot frame/pyramid caches are written only
//	              inside constructor/build functions; everywhere else
//	              tile workers share them read-only
//	swarwidth     in internal/codec/motion and internal/bits: constant
//	              shifts past the operand width, 64-bit masks that are
//	              not byte/16/32-bit lane-periodic, and narrowing
//	              conversions of SWAR lane accumulators
//	goleak        a go statement in the scheduling/transcode/cluster/
//	              codec packages must be joined in the spawning
//	              function (WaitGroup or channel)
//
// Useful selections:
//
//	vculint -rules scratchshare,sharedmut,swarwidth,goleak ./...
//
// Exit codes: 0 clean, 1 findings, 2 usage or I/O error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"openvcu/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("vculint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON")
	rules := fs.String("rules", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list registered analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.All()
	if *rules != "" {
		analyzers = nil
		for _, name := range strings.Split(*rules, ",") {
			name = strings.TrimSpace(name)
			a := lint.Lookup(name)
			if a == nil {
				fmt.Fprintf(stderr, "vculint: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "vculint:", err)
		return 2
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "vculint:", err)
		return 2
	}

	// Positional arguments: "./..." (or none) means the whole module;
	// anything else is a directory restriction relative to the module
	// root.
	var dirs []string
	for _, arg := range fs.Args() {
		if arg == "./..." || arg == "..." || arg == "." {
			dirs = nil
			break
		}
		clean := filepath.ToSlash(filepath.Clean(strings.TrimSuffix(arg, "/...")))
		clean = strings.TrimPrefix(clean, "./")
		abs := clean
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(cwd, clean)
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			fmt.Fprintf(stderr, "vculint: %s is outside the module\n", arg)
			return 2
		}
		if fi, err := os.Stat(abs); err != nil || !fi.IsDir() {
			fmt.Fprintf(stderr, "vculint: %s is not a directory\n", arg)
			return 2
		}
		dirs = append(dirs, filepath.ToSlash(rel))
	}

	diags, err := lint.Run(lint.Config{Root: root, Analyzers: analyzers, Dirs: dirs})
	if err != nil {
		fmt.Fprintln(stderr, "vculint:", err)
		return 2
	}

	// Report paths relative to the invocation directory, the way go
	// vet does, so editors can jump to them.
	for i := range diags {
		if rel, err := filepath.Rel(cwd, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = rel
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, "vculint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "vculint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}
