// Command fleetsim regenerates the paper's longitudinal deployment
// figures: per-VCU production throughput (Figure 8), workload ramps
// (Figures 9a/9b), the opportunistic software-decode flip (Figure 9c)
// and the rate-control tuning trajectory (Figure 10).
package main

import (
	"flag"
	"fmt"

	"openvcu/internal/fleetsim"
)

func main() {
	fig8 := flag.Bool("fig8", false, "Figure 8 only")
	fig9a := flag.Bool("fig9a", false, "Figure 9a only")
	fig9b := flag.Bool("fig9b", false, "Figure 9b only")
	fig9c := flag.Bool("fig9c", false, "Figure 9c only")
	fig10 := flag.Bool("fig10", false, "Figure 10 only")
	overload := flag.Bool("overload", false, "overload curves only (goodput vs offered load, SLO vs fleet loss)")
	autoscale := flag.Bool("autoscale", false, "autoscaling cost-vs-SLO frontier only")
	audit := flag.Bool("audit", false, "escapes-vs-audit-budget frontier only")
	flag.Parse()
	all := !*fig8 && !*fig9a && !*fig9b && !*fig9c && !*fig10 && !*overload && !*autoscale && !*audit
	cfg := fleetsim.DefaultConfig()

	if all || *fig8 {
		mot, sot := fleetsim.Figure8Production(cfg, 12)
		fmt.Println("== Figure 8: per-VCU production throughput (Mpix/s) ==")
		fmt.Printf("%-6s %10s %10s\n", "week", "MOT", "SOT")
		for i := range mot {
			fmt.Printf("%-6.0f %10.0f %10.0f\n", mot[i].Month, mot[i].Value, sot[i].Value)
		}
		fmt.Println("(paper: MOT ~400 flat, SOT ~250 variable)")
		fmt.Println()
	}
	if all || *fig9a {
		fmt.Println("== Figure 9a: chunked upload workload, normalized throughput ==")
		for _, s := range fleetsim.Figure9aUploadRamp(cfg) {
			fmt.Printf("month %2.0f: %5.1fx %s\n", s.Month, s.Value, bar(s.Value, 1.2))
		}
		for _, e := range fleetsim.UploadRampEvents {
			fmt.Printf("  event @ month %.0f: x%.2f %s\n", e.Month, e.Multiplier, e.Description)
		}
		fmt.Println()
	}
	if all || *fig9b {
		fmt.Println("== Figure 9b: live transcoding on VCU, normalized throughput ==")
		for _, s := range fleetsim.Figure9bLiveRamp(cfg) {
			fmt.Printf("month %2.0f: %5.1fx %s\n", s.Month, s.Value, bar(s.Value, 3))
		}
		fmt.Println()
	}
	if all || *fig9c {
		fmt.Println("== Figure 9c: hardware decoder utilization (software decode enabled after month 6) ==")
		for _, s := range fleetsim.Figure9cDecoderUtil(cfg) {
			fmt.Printf("month %2.0f: %5.1f%% %s\n", s.Month, s.Value*100, bar(s.Value*40, 1))
		}
		fmt.Println("(paper: ~98% dropping to ~91%)")
		fmt.Println()
	}
	if all || *fig10 {
		vp9, h264 := fleetsim.Figure10Bitrate(cfg, 16)
		fmt.Println("== Figure 10: hardware bitrate vs software at iso-quality ==")
		fmt.Printf("%-8s %8s %8s\n", "month", "VP9", "H.264")
		for i := range vp9 {
			fmt.Printf("%-8.0f %+7.1f%% %+7.1f%%\n", vp9[i].Month, vp9[i].Value, h264[i].Value)
		}
		fmt.Println("(paper: VP9 +12% -> ~-2%; H.264 +8% -> below 0 near month 12)")
	}
	if all || *overload {
		if all {
			fmt.Println()
		}
		fmt.Println("== Overload: goodput vs offered load (admission + brownout armed) ==")
		fmt.Printf("%-6s %10s %12s %7s %8s\n", "mult", "offered/h", "goodput/h", "shed", "liveSLO")
		for _, s := range fleetsim.GoodputVsOfferedLoad(fleetsim.DefaultGoodputConfig()) {
			fmt.Printf("%-6.1f %10.0f %12.0f %6.1f%% %8.3f\n",
				s.Multiplier, s.OfferedPerHour, s.GoodputPerHour, s.ShedFraction*100, s.LiveSLO)
		}
		fmt.Println("(goodput plateaus at park capacity; excess load is shed, not queued)")
		fmt.Println()
		fmt.Println("== Overload: live SLO vs fleet loss (survivors shed batch) ==")
		fmt.Printf("%-6s %8s %12s %10s\n", "lost", "liveSLO", "batch shed", "rerouted")
		for _, s := range fleetsim.SLOVsFleetLoss(fleetsim.DefaultFleetLossConfig()) {
			fmt.Printf("%-6d %8.3f %11.1f%% %10d\n",
				s.HostsLost, s.LiveSLO, s.BatchShedFraction*100, s.Overflowed)
		}
		fmt.Println("(live attainment degrades far more slowly than capacity)")
	}
	if all || *autoscale {
		if all {
			fmt.Println()
		}
		fmt.Println("== Autoscaling: cost-vs-SLO frontier (diurnal + 2x spike trace) ==")
		fmt.Printf("%-10s %6s %10s %9s %8s %8s %10s\n",
			"policy", "rho*", "cost (wh)", "x oracle", "liveSLO", "resizes", "conflicts")
		for _, p := range fleetsim.CostVsSLOFrontier(fleetsim.DefaultFrontierConfig()) {
			fmt.Printf("%-10s %6.1f %10.1f %9.2f %8.3f %8d %10d\n",
				p.Policy, p.TargetUtil, p.CostWorkerHours, p.CostVsOracle,
				p.LiveSLO, p.Resizes, p.ConflictTicks)
		}
		fmt.Println("(the autoscaled park tracks the trace near oracle cost; the static park pays peak around the clock)")
	}
	if all || *audit {
		if all {
			fmt.Println()
		}
		fmt.Println("== Audit: escapes vs audit budget (intermittent corrupter, 1-in-2 duty cycle) ==")
		fmt.Printf("%-8s %8s %8s %8s %9s %10s\n",
			"budget", "escapes", "audits", "found", "recalled", "convicted")
		for _, p := range fleetsim.EscapesVsAuditBudget(fleetsim.DefaultAuditFrontierConfig()) {
			fmt.Printf("%-8.2f %8d %8d %8d %9d %10d\n",
				p.Budget, p.Escapes, p.Audited, p.AuditFailures, p.Recalled, p.Convictions)
		}
		fmt.Println("(a few percent of completions re-verified corners the corrupter admission screening cannot catch)")
	}
}

func bar(v, unit float64) string {
	n := int(v / unit)
	if n < 0 {
		n = 0
	}
	if n > 60 {
		n = 60
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
