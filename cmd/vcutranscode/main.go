// Command vcutranscode is the CLI transcoder: it encodes a procedural
// vbench clip (or transcodes an existing .ovcu stream) into one or more
// output variants, writing OVCU container files and reporting bitrate,
// PSNR and throughput — a miniature of the paper's transcoding service.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"openvcu/internal/codec"
	"openvcu/internal/codec/rc"
	"openvcu/internal/container"
	"openvcu/internal/transcode"
	"openvcu/internal/vbench"
	"openvcu/internal/video"
)

func main() {
	clipName := flag.String("clip", "bike", "vbench clip to use as source")
	inPath := flag.String("in", "", "input file, .y4m or .ovcu (overrides -clip/-scale/-frames)")
	y4mOut := flag.Bool("y4mout", false, "also write decoded outputs as .y4m")
	profile := flag.String("profile", "vp9", "output codec profile: h264 | vp9 | av1")
	mode := flag.String("mode", "mot", "transcode mode: mot | sot")
	scale := flag.Int("scale", 16, "source downscale factor")
	frames := flag.Int("frames", 8, "frames to encode")
	bpp := flag.Float64("bpp", 0.08, "target bits per pixel")
	hardware := flag.Bool("hardware", false, "apply VCU pipeline restrictions")
	tiles := flag.Int("tiles", 1, "tile columns (1, 2, 4, 8): parallel encode")
	workers := flag.Int("workers", 0, "encoder worker-pool size (0 = all cores, 1 = inline)")
	outDir := flag.String("o", ".", "output directory for .ovcu files")
	verify := flag.Bool("verify", true, "decode outputs and report PSNR")
	flag.Parse()

	prof := codec.VP9Class
	switch {
	case strings.EqualFold(*profile, "h264"):
		prof = codec.H264Class
	case strings.EqualFold(*profile, "av1"):
		prof = codec.AV1Class
	}
	var src []*video.Frame
	fps := 30
	name := *clipName
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			fail("open %s: %v", *inPath, err)
		}
		if strings.EqualFold(filepath.Ext(*inPath), ".ovcu") {
			// True transcode: decode an encoded stream as the source.
			info, pkts, err := container.NewReader(f).ReadAll()
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fail("%s: %v", *inPath, err)
			}
			src, err = codec.DecodeSequence(pkts)
			if err != nil {
				fail("%s: decode: %v", *inPath, err)
			}
			fps = info.FPS
		} else {
			r, err := video.NewY4MReader(f)
			if err != nil {
				fail("%s: %v", *inPath, err)
			}
			src, err = r.ReadAll()
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fail("%s: %v", *inPath, err)
			}
			fps = r.FPS()
		}
		if len(src) == 0 {
			fail("%s: no frames", *inPath)
		}
		name = strings.TrimSuffix(filepath.Base(*inPath), filepath.Ext(*inPath))
	} else {
		clip, ok := vbench.ByName(*clipName)
		if !ok {
			fail("unknown clip %q (see internal/vbench for the suite)", *clipName)
		}
		srcCfg := clip.SourceConfig(*scale, *frames)
		src = video.NewSource(srcCfg).Frames(*frames)
		fps = clip.FPS
	}
	inRes := video.Resolution{Name: "src", Width: src[0].Width, Height: src[0].Height}

	// Build the output ladder: full ladder for MOT, top rung for SOT.
	specs := []transcode.OutputSpec{{
		Name: inRes.Name, Resolution: inRes, Profile: prof, Hardware: *hardware, TileColumns: *tiles,
		Workers: *workers,
		RC: rc.Config{Mode: rc.ModeTwoPassOffline,
			TargetBitrate: int(*bpp * float64(inRes.Pixels()) * float64(fps))},
	}}
	if strings.EqualFold(*mode, "mot") {
		half := video.Resolution{Name: "half", Width: inRes.Width / 2 / 16 * 16, Height: inRes.Height / 2 / 16 * 16}
		if half.Width >= 32 && half.Height >= 32 {
			specs = append(specs, transcode.OutputSpec{
				Name: half.Name, Resolution: half, Profile: prof, Hardware: *hardware,
				Workers: *workers,
				RC: rc.Config{Mode: rc.ModeTwoPassOffline,
					TargetBitrate: int(*bpp * float64(half.Pixels()) * float64(fps))},
			})
		}
	}

	start := time.Now()
	res, err := transcode.MOT(src, fps, specs)
	if err != nil {
		fail("transcode: %v", err)
	}
	wall := time.Since(start)

	var outPixels int64
	for _, out := range res.Outputs {
		path := filepath.Join(*outDir, fmt.Sprintf("%s-%s-%s.ovcu", name, out.Spec.Name, prof))
		if err := writeStream(path, out, fps, len(src)); err != nil {
			fail("write %s: %v", path, err)
		}
		outPixels += out.OutputPixels
		seconds := float64(len(src)) / float64(fps)
		line := fmt.Sprintf("%-10s %4dx%-4d %8.0f bps", out.Spec.Name,
			out.Spec.Resolution.Width, out.Spec.Resolution.Height,
			float64(out.TotalBits)/seconds)
		if *verify || *y4mOut {
			dec, err := codec.DecodeSequence(out.Packets)
			if err != nil {
				fail("verify %s: %v", out.Spec.Name, err)
			}
			if *verify {
				ref := make([]*video.Frame, len(dec))
				for i, f := range src {
					ref[i] = video.Scale(f, out.Spec.Resolution.Width, out.Spec.Resolution.Height)
				}
				line += fmt.Sprintf("  PSNR %.2f dB", video.SequencePSNR(ref, dec))
			}
			if *y4mOut {
				yp := filepath.Join(*outDir, fmt.Sprintf("%s-%s-%s.y4m", name, out.Spec.Name, prof))
				if err := writeY4M(yp, dec, fps); err != nil {
					fail("write %s: %v", yp, err)
				}
			}
		}
		fmt.Println(line + "  -> " + path)
	}
	fmt.Printf("encoded %.1f Mpix in %v (%.2f Mpix/s software encode)\n",
		float64(outPixels)/1e6, wall.Round(time.Millisecond),
		float64(outPixels)/1e6/wall.Seconds())
}

func writeStream(path string, out transcode.Output, fps, frames int) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	// Close errors matter on the write path: a full disk surfaces here.
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	w := container.NewWriter(f)
	if err := w.WriteHeader(container.StreamInfo{
		Profile: out.Spec.Profile,
		Width:   out.Spec.Resolution.Width, Height: out.Spec.Resolution.Height,
		FPS: fps, FrameCount: frames,
	}); err != nil {
		return err
	}
	for _, p := range out.Packets {
		if err := w.WritePacket(p); err != nil {
			return err
		}
	}
	return nil
}

func writeY4M(path string, frames []*video.Frame, fps int) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	w := video.NewY4MWriter(f, frames[0].Width, frames[0].Height, fps)
	for _, fr := range frames {
		if err := w.WriteFrame(fr); err != nil {
			return err
		}
	}
	return w.Close()
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
