// Command vcubench runs the tracked encoder hot-path benchmarks and
// writes BENCH_codec.json: pixel-kernel microbenchmarks, the whole-frame
// 720p encode (the ISSUE 2 acceptance workload), quality guard values
// (PSNR/bitrate at a fixed QP), the BD-rate of the pyramid motion
// search against the flat diamond baseline, and the worker-scaling
// curve of the parallel encode pipeline. The embedded baseline
// section holds the numbers measured at the pre-optimization commit so
// regressions and wins are visible without checking out old trees.
//
// Usage: go run ./cmd/vcubench [-out BENCH_codec.json] [-quick]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"openvcu/internal/codec"
	"openvcu/internal/codec/motion"
	"openvcu/internal/codec/rc"
	"openvcu/internal/metrics"
	"openvcu/internal/vbench"
	"openvcu/internal/video"
)

// baseline holds the tracked numbers measured at commit f7317e3 (the
// parent of the hot-path optimization PR) on an Intel Xeon @ 2.70GHz.
// They are the denominators for the speedup columns.
var baseline = report{
	Commit:             "f7317e3",
	Encode720pMpixS:    0.1918,
	Encode720pAllocs:   169114,
	BlockSAD16Ns:       442.2,
	SampleSharp16Ns:    9619,
	SampleBilinear16Ns: 1103,
	SampleCompound16Ns: 1363,
	// The baseline commit predates the pyramid search: its single
	// motion-search benchmark was the flat diamond.
	FlatSearch16Ns: 13495,
}

type report struct {
	Commit             string  `json:"commit,omitempty"`
	Encode720pMpixS    float64 `json:"encode_720p_mpix_per_s"`
	Encode720pFPS      float64 `json:"encode_720p_fps,omitempty"`
	Encode720pAllocs   int64   `json:"encode_720p_allocs_per_op"`
	Encode720pFlatMpix float64 `json:"encode_720p_flat_mpix_per_s,omitempty"`
	BlockSAD16Ns       float64 `json:"block_sad16_ns_per_op"`
	SampleSharp16Ns    float64 `json:"sample_sharp16_ns_per_op"`
	SampleBilinear16Ns float64 `json:"sample_bilinear16_ns_per_op"`
	SampleCompound16Ns float64 `json:"sample_compound16_ns_per_op"`
	// The two motion-search benchmarks measure the same 16×16 search
	// through the two seeding modes (the old diamond_search16_ns_per_op
	// name conflated them): flat starts the diamond from the spatial
	// predictors only; pyramid seeds it from the coarse-level hit.
	FlatSearch16Ns    float64 `json:"motion_search16_flat_ns_per_op"`
	PyramidSearch16Ns float64 `json:"motion_search16_pyramid_ns_per_op,omitempty"`
	KernelAllocs      int64   `json:"kernel_allocs_per_op"`
	GuardPSNR         float64 `json:"guard_psnr_db,omitempty"`
	GuardBits         int     `json:"guard_bits,omitempty"`
	BDRatePyramidPct  float64 `json:"bd_rate_pyramid_vs_flat_pct,omitempty"`
}

// scalingPoint is one rung of the worker-scaling curve: the tracked
// 720p workload at 8 tile columns with the persistent pool sized to
// Workers. Efficiency is speedup/workers — 1.0 would be perfect linear
// scaling; on a single-core runner the whole curve is honestly flat.
type scalingPoint struct {
	Workers    int     `json:"workers"`
	MpixS      float64 `json:"mpix_per_s"`
	Speedup    float64 `json:"speedup_vs_1worker"`
	Efficiency float64 `json:"parallel_efficiency"`
}

type output struct {
	Schema int    `json:"schema"`
	CPU    string `json:"cpu"`
	NumCPU int    `json:"num_cpu"`
	// GOMAXPROCS and Workers record the parallelism the numbers were
	// measured under: the scheduler cap and the encoder pool size of
	// the headline 720p run (0 in the config means GOMAXPROCS).
	GOMAXPROCS int            `json:"gomaxprocs"`
	Workers    int            `json:"workers"`
	Baseline   report         `json:"baseline"`
	Current    report         `json:"current"`
	Scaling    []scalingPoint `json:"scaling,omitempty"`
}

func main() {
	out := flag.String("out", "BENCH_codec.json", "output file")
	quick := flag.Bool("quick", false, "skip the BD-rate RD sweep")
	flag.Parse()

	cur := report{}
	runKernels(&cur)
	runEncode(&cur)
	runGuards(&cur, *quick)

	doc := output{
		Schema: 2,
		CPU:    runtime.GOARCH, NumCPU: runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    runtime.GOMAXPROCS(0), // headline run uses Workers=0 → GOMAXPROCS
		Baseline:   baseline,
		Current:    cur,
	}
	if !*quick {
		doc.Scaling = runScaling()
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
	fmt.Printf("encode 720p: %.4f Mpix/s (%.2fx vs baseline %.4f), %d allocs/op\n",
		cur.Encode720pMpixS, cur.Encode720pMpixS/baseline.Encode720pMpixS,
		baseline.Encode720pMpixS, cur.Encode720pAllocs)
	if !*quick {
		fmt.Printf("BD-rate pyramid vs flat: %+.2f%%\n", cur.BDRatePyramidPct)
		for _, pt := range doc.Scaling {
			fmt.Printf("scaling w=%d: %.4f Mpix/s, speedup %.2fx, efficiency %.2f\n",
				pt.Workers, pt.MpixS, pt.Speedup, pt.Efficiency)
		}
	}
}

// runScaling encodes the headline 720p workload at 8 tile columns with
// the pool sized 1/2/4/8 and records throughput, speedup over the
// 1-worker run, and parallel efficiency (speedup/workers). Workers=1
// takes the inline no-pool path, so the curve also exposes any pool
// dispatch overhead.
func runScaling() []scalingPoint {
	frames := video.NewSource(video.SourceConfig{
		Width: 1280, Height: 720, Seed: 7, Detail: 0.5, Motion: 1.5,
		ObjectMotion: 2, Objects: 2}).Frames(3)
	pixPerOp := float64(len(frames)) * 1280 * 720
	pts := make([]scalingPoint, 0, 4)
	var base float64
	for _, w := range []int{1, 2, 4, 8} {
		cfg := codec.Config{Profile: codec.VP9Class, Width: 1280, Height: 720,
			TileColumns: 8, Workers: w, RC: rc.Config{BaseQP: 32}}
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := codec.EncodeSequence(cfg, frames); err != nil {
					fatal(err)
				}
			}
		})
		mpixS := pixPerOp / (float64(r.NsPerOp()) / 1e9) / 1e6
		if w == 1 {
			base = mpixS
		}
		speedup := mpixS / base
		pts = append(pts, scalingPoint{
			Workers: w, MpixS: mpixS,
			Speedup: speedup, Efficiency: speedup / float64(w),
		})
	}
	return pts
}

// runKernels measures the pixel kernels on a 640×360 plane, the same
// geometry as the in-package benchmarks.
func runKernels(cur *report) {
	w, h := 640, 360
	refPix := planeFor(w, h, 11)
	curPix := planeFor(w, h, 12)
	ref := motion.Ref{Pix: refPix, W: w, H: h}
	sharpRef := ref
	sharpRef.Sharp = true
	sc := motion.NewScratch()
	dst := make([]uint8, 16*16)

	cur.BlockSAD16Ns = nsPerOp(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			motion.PlanarSAD(curPix[100*w+100:], w, refPix[102*w+103:], w, 16)
		}
	})
	cur.SampleSharp16Ns = nsPerOp(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			motion.SampleBlock(sharpRef, 100, 100, motion.MV{X: 3, Y: 5}, dst, 16, sc)
		}
	})
	cur.SampleBilinear16Ns = nsPerOp(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			motion.SampleBlock(ref, 100, 100, motion.MV{X: 3, Y: 5}, dst, 16, sc)
		}
	})
	cur.SampleCompound16Ns = nsPerOp(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			motion.SampleCompound(sharpRef, motion.MV{X: 3, Y: 5}, ref, motion.MV{X: -2, Y: 1},
				100, 100, dst, 16, sc)
		}
	})
	p := motion.SearchParams{RangeX: 16, RangeY: 16, SubPelDepth: 2, LambdaMVCost: 2}
	cur.FlatSearch16Ns = nsPerOp(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			motion.Search(curPix[100*w+100:], w, ref, 100, 100, motion.Zero, 16, p, sc)
		}
	})
	pyrRef := ref
	pyrRef.Pyr = motion.BuildPyramid(refPix, w, h)
	pp := p
	pp.Pyramid = true
	pp.CurPyr = motion.BuildPyramid(curPix, w, h)
	cur.PyramidSearch16Ns = nsPerOp(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			motion.Search(curPix[100*w+100:], w, pyrRef, 100, 100, motion.Zero, 16, pp, sc)
		}
	})
	// Alloc check on the SAD/interp/compound trio: must be zero.
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			motion.PlanarSAD(curPix[100*w+100:], w, refPix[102*w+103:], w, 16)
			motion.SampleBlock(sharpRef, 100, 100, motion.MV{X: 3, Y: 5}, dst, 16, sc)
			motion.SampleCompound(sharpRef, motion.MV{X: 3, Y: 5}, ref, motion.MV{X: -2, Y: 1},
				100, 100, dst, 16, sc)
		}
	})
	cur.KernelAllocs = r.AllocsPerOp()
}

// runEncode measures the headline whole-frame workload: 3 frames of
// 1280×720 through the VP9-class encoder (same clip as
// BenchmarkEncodeFrame720p).
func runEncode(cur *report) {
	frames := video.NewSource(video.SourceConfig{
		Width: 1280, Height: 720, Seed: 7, Detail: 0.5, Motion: 1.5,
		ObjectMotion: 2, Objects: 2}).Frames(3)
	run := func(flat bool) (float64, int64) {
		cfg := codec.Config{Profile: codec.VP9Class, Width: 1280, Height: 720,
			RC: rc.Config{BaseQP: 32}, DisablePyramidSearch: flat}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := codec.EncodeSequence(cfg, frames); err != nil {
					fatal(err)
				}
			}
		})
		pixPerOp := float64(len(frames)) * 1280 * 720
		mpixS := pixPerOp / (float64(r.NsPerOp()) / 1e9) / 1e6
		return mpixS, r.AllocsPerOp()
	}
	var allocs int64
	cur.Encode720pMpixS, allocs = run(false)
	cur.Encode720pAllocs = allocs
	cur.Encode720pFPS = cur.Encode720pMpixS * 1e6 / (1280 * 720)
	cur.Encode720pFlatMpix, _ = run(true)
}

// runGuards records quality guard values: PSNR/bits of a fixed-QP
// encode, and (unless -quick) the BD-rate of the pyramid search against
// the flat diamond on a vbench clip — the ISSUE 2 gate is ≤ +2%.
func runGuards(cur *report, quick bool) {
	frames := video.NewSource(video.SourceConfig{
		Width: 320, Height: 192, Seed: 9, Detail: 0.6, Motion: 1.5,
		ObjectMotion: 3, Objects: 2}).Frames(6)
	res, err := codec.EncodeSequence(codec.Config{Profile: codec.VP9Class,
		Width: 320, Height: 192, RC: rc.Config{BaseQP: 36}}, frames)
	if err != nil {
		fatal(err)
	}
	dec, err := codec.DecodeSequence(res.Packets)
	if err != nil {
		fatal(err)
	}
	cur.GuardPSNR = video.SequencePSNR(frames, dec)
	cur.GuardBits = res.TotalBits

	if quick {
		return
	}
	clip, ok := vbench.ByName("bike")
	if !ok {
		fatal(fmt.Errorf("vbench clip 'bike' missing"))
	}
	base := vbench.EncoderUnderTest{Label: "flat", Profile: codec.VP9Class, FlatSearch: true}
	pyr := vbench.EncoderUnderTest{Label: "pyramid", Profile: codec.VP9Class}
	refCurve, err := vbench.RunRD(clip, base, 16, 4)
	if err != nil {
		fatal(err)
	}
	testCurve, err := vbench.RunRD(clip, pyr, 16, 4)
	if err != nil {
		fatal(err)
	}
	bd, err := metrics.BDRate(refCurve.Points, testCurve.Points)
	if err != nil {
		fatal(err)
	}
	cur.BDRatePyramidPct = bd
}

func planeFor(w, h int, seed uint64) []uint8 {
	return video.NewSource(video.SourceConfig{Width: w, Height: h, Seed: seed,
		Detail: 0.7, Motion: 1}).Frame(0).Y
}

func nsPerOp(f func(b *testing.B)) float64 {
	return float64(testing.Benchmark(f).NsPerOp())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vcubench:", err)
	os.Exit(1)
}
