// Command balance prints the system-balance analysis of the paper's
// Appendix A and §3.3.1: the network-derived throughput limits, Table 2
// host-resource scaling, the VCU DRAM bandwidth budget, device-memory
// footprints and attachment ceilings.
package main

import (
	"flag"
	"fmt"

	"openvcu/internal/balance"
	"openvcu/internal/vcu"
)

func main() {
	table2 := flag.Bool("table2", false, "print only Table 2")
	dram := flag.Bool("dram", false, "print only the DRAM speeds & feeds")
	appendix := flag.Bool("appendix", false, "print only the A.2/A.4/A.5 numbers")
	flag.Parse()
	all := !*table2 && !*dram && !*appendix
	p := vcu.DefaultParams()

	if all || *appendix {
		n := balance.Network(p)
		fmt.Println("== Appendix A.2: bandwidth as transcoding throughput ==")
		fmt.Printf("upload density:            %.1f pixels/bit\n", n.PixelsPerBit)
		fmt.Printf("ideal network limit:       %.0f Gpix/s   (paper: ~600)\n", n.IdealGpixPerSec)
		fmt.Printf("effective limit:           %.0f Gpix/s   (paper: ~153)\n\n", n.EffectiveGpixPerSec)
	}

	if all || *table2 {
		fmt.Println("== Table 2: host resources scaled for 153 Gpixel/s ==")
		fmt.Printf("%-24s %14s %16s\n", "Use", "Logical Cores", "DRAM Bandwidth")
		for _, r := range balance.Table2(p) {
			fmt.Printf("%-24s %14.0f %13.0f Gbps\n", r.Use, r.LogicalCores, r.DRAMGbps)
		}
		cores, dramFrac := balance.HostHeadroom(p)
		fmt.Printf("host usage: %.0f%% of cores, %.0f%% of DRAM bandwidth (paper: about half)\n\n",
			cores*100, dramFrac*100)
	}

	if all || *dram {
		b := balance.DRAMNeeds(p)
		fmt.Println("== §3.3.1 VCU DRAM speeds & feeds (per core at 2160p60) ==")
		fmt.Printf("encoder raw:               %.2f GiB/s  (paper: ~3.5)\n", b.EncoderRawGiBs)
		fmt.Printf("encoder FBC worst:         %.2f GiB/s  (paper: ~3)\n", b.EncoderFBCWorstGiBs)
		fmt.Printf("encoder FBC typical:       %.2f GiB/s  (paper: ~2)\n", b.EncoderFBCTypGiBs)
		fmt.Printf("decoder:                   %.2f GiB/s  (paper: 2.2)\n", b.DecoderGiBs)
		fmt.Printf("chip needs:                %.1f-%.1f GiB/s (paper: 27-37)\n", b.ChipTypicalGiBs, b.ChipWorstGiBs)
		fmt.Printf("chip provides:             %.1f GiB/s  (4x 32b LPDDR4-3200)\n\n", b.ProvidedGiBs)
	}

	if all || *appendix {
		f := balance.DeviceMemory(p)
		fmt.Println("== Appendix A.4: VCU DRAM capacity ==")
		fmt.Printf("2160p 10-bit references:   %.0f MiB   (paper: ~140)\n", f.RefFramesMiB)
		fmt.Printf("MOT decode+encode:         %.0f MiB   (paper: ~420)\n", f.MOTCodecMiB)
		fmt.Printf("15-frame lag buffer:       %.0f MiB   (paper: ~180-220)\n", f.LagBufferMiB)
		fmt.Printf("MOT total:                 %.0f MiB   (paper: ~700) -> %d jobs per 8 GiB VCU\n",
			f.MOTTotalMiB, f.MOTJobsPerVCU)
		fmt.Printf("SOT total:                 %.0f MiB   (paper: ~500) -> %d jobs per 8 GiB VCU\n\n",
			f.SOTTotalMiB, f.SOTJobsPerVCU)

		c := balance.Ceilings(p)
		fmt.Println("== Appendix A.2/A.5: attachment ceilings ==")
		fmt.Printf("realtime ceiling:          %d VCUs/host (paper: 30)\n", c.RealtimeVCUs)
		fmt.Printf("offline two-pass ceiling:  %d VCUs/host (paper: 150)\n", c.OfflineVCUs)
		fmt.Printf("deployed:                  %d VCUs/host (2 trays x 5 cards x 2 VCUs)\n", c.DeployedVCUs)
	}
}
