// Benchmarks that regenerate every table and figure of the paper's
// evaluation (§4 and Appendix A). Each benchmark reports the reproduced
// numbers as custom metrics (units named after the paper's) so
// `go test -bench . -benchmem` prints the whole evaluation; EXPERIMENTS.md
// records paper-vs-measured for each.
package openvcu_test

import (
	"fmt"
	"testing"
	"time"

	"openvcu/internal/balance"
	"openvcu/internal/cluster"
	"openvcu/internal/codec"
	"openvcu/internal/codec/rc"
	"openvcu/internal/fleetsim"
	"openvcu/internal/metrics"
	"openvcu/internal/tco"
	"openvcu/internal/vbench"
	"openvcu/internal/vcu"
	"openvcu/internal/video"
	"openvcu/internal/workload"
)

// --- Table 1 -----------------------------------------------------------------

// BenchmarkTable1_Throughput regenerates Table 1's throughput and
// perf/TCO columns (paper: Skylake 714/154, 4xT4 2484/-, 8xVCU 5973/6122,
// 20xVCU 14932/15306 Mpix/s; perf/TCO 1.0, 1.5, 4.4/20.8, 7.0/33.3).
func BenchmarkTable1_Throughput(b *testing.B) {
	var rows []tco.Row
	for i := 0; i < b.N; i++ {
		rows = tco.Table1(tco.DefaultConstants(), vcu.DefaultParams(), 120*time.Second)
	}
	for _, r := range rows {
		b.ReportMetric(r.ThroughputH264, fmt.Sprintf("Mpix/s-h264-%s", slug(r.System.String())))
		if r.ThroughputVP9 > 0 {
			b.ReportMetric(r.ThroughputVP9, fmt.Sprintf("Mpix/s-vp9-%s", slug(r.System.String())))
		}
		b.ReportMetric(r.PerfTCOH264, fmt.Sprintf("perfTCO-h264-%s", slug(r.System.String())))
	}
}

// BenchmarkTable1_MOTvsSOT regenerates the MOT-over-SOT throughput ratio
// (paper: 1.2-1.3x, 976/927 Mpix/s per VCU).
func BenchmarkTable1_MOTvsSOT(b *testing.B) {
	var ratio, motPerVCU float64
	for i := 0; i < b.N; i++ {
		p := vcu.DefaultParams()
		sot := vcu.RunThroughput(p, 4, vcu.Workload{Mode: vcu.ModeSOT, Profile: codec.H264Class,
			Encode: vcu.EncodeTwoPassOffline, InputRes: video.Res1080p}, 120*time.Second)
		mot := vcu.RunThroughput(p, 4, vcu.Workload{Mode: vcu.ModeMOT, Profile: codec.H264Class,
			Encode: vcu.EncodeTwoPassOffline, InputRes: video.Res1080p}, 120*time.Second)
		ratio = mot.MpixPerSec / sot.MpixPerSec
		motPerVCU = mot.PerVCUMpixPerSec
	}
	b.ReportMetric(ratio, "MOT/SOT-ratio")
	b.ReportMetric(motPerVCU, "Mpix/s-perVCU-MOT")
}

// BenchmarkTable1_PerfPerWatt regenerates the §4.1 perf/watt ratios
// (paper: 6.7x SOT H.264, 68.9x MOT VP9).
func BenchmarkTable1_PerfPerWatt(b *testing.B) {
	var pw tco.PerfPerWatt
	for i := 0; i < b.N; i++ {
		pw = tco.PerfWatt(tco.DefaultConstants(), vcu.DefaultParams(), 120*time.Second)
	}
	b.ReportMetric(pw.SOTH264Ratio, "perfW-ratio-sot-h264")
	b.ReportMetric(pw.MOTVP9Ratio, "perfW-ratio-mot-vp9")
}

// --- Figure 7 ----------------------------------------------------------------

// BenchmarkFigure7_RDCurves traces Figure 7's RD curves on a suite subset
// with real encodes and reports the three BD-rate comparisons of §4.1
// (paper at launch: VCU-VP9 vs soft-H.264 ≈ -30%, VCU-H.264 vs libx264
// ≈ +11.5%, VCU-VP9 vs libvpx ≈ +18%).
func BenchmarkFigure7_RDCurves(b *testing.B) {
	clips := []string{"presentation", "bike", "holi"}
	var vp9VsSwH264, hwVsSwH264, hwVsSwVP9 float64
	for i := 0; i < b.N; i++ {
		var s1, s2, s3 float64
		var n int
		for _, name := range clips {
			clip, _ := vbench.ByName(name)
			curves := map[string][]metrics.RDPoint{}
			for _, eut := range vbench.StandardEncoders {
				c, err := vbench.RunRD(clip, eut, 16, 12)
				if err != nil {
					b.Fatal(err)
				}
				curves[eut.Label] = c.Points
			}
			if bd, err := metrics.BDRate(curves["libx264-sw"], curves["vcu-vp9"]); err == nil {
				s1 += bd
				n++
			}
			if bd, err := metrics.BDRate(curves["libx264-sw"], curves["vcu-h264"]); err == nil {
				s2 += bd
			}
			if bd, err := metrics.BDRate(curves["libvpx-sw"], curves["vcu-vp9"]); err == nil {
				s3 += bd
			}
		}
		vp9VsSwH264 = s1 / float64(n)
		hwVsSwH264 = s2 / float64(n)
		hwVsSwVP9 = s3 / float64(n)
	}
	b.ReportMetric(vp9VsSwH264, "BDrate%-vcuvp9-vs-swh264")
	b.ReportMetric(hwVsSwH264, "BDrate%-vcuh264-vs-swh264")
	b.ReportMetric(hwVsSwVP9, "BDrate%-vcuvp9-vs-swvp9")
}

// --- Figure 8 ----------------------------------------------------------------

// BenchmarkFigure8_ProductionThroughput regenerates the per-VCU
// production throughput levels (paper: MOT ~400, SOT ~250 Mpix/s).
func BenchmarkFigure8_ProductionThroughput(b *testing.B) {
	var r tco.MOTvsSOT
	for i := 0; i < b.N; i++ {
		r = tco.ProductionThroughput(vcu.DefaultParams(), 120*time.Second)
	}
	b.ReportMetric(r.MOTPerVCU, "Mpix/s-MOT-production")
	b.ReportMetric(r.SOTPerVCU, "Mpix/s-SOT-production")
}

// --- Figure 9 ----------------------------------------------------------------

// BenchmarkFigure9a_UploadRamp regenerates the chunked upload workload
// ramp (paper: ~10x total throughput by month 7+).
func BenchmarkFigure9a_UploadRamp(b *testing.B) {
	var final float64
	for i := 0; i < b.N; i++ {
		s := fleetsim.Figure9aUploadRamp(fleetsim.DefaultConfig())
		final = s[len(s)-1].Value
	}
	b.ReportMetric(final, "x-month12-throughput")
}

// BenchmarkFigure9b_LiveRamp regenerates the live transcoding ramp.
func BenchmarkFigure9b_LiveRamp(b *testing.B) {
	var final float64
	for i := 0; i < b.N; i++ {
		s := fleetsim.Figure9bLiveRamp(fleetsim.DefaultConfig())
		final = s[len(s)-1].Value
	}
	b.ReportMetric(final, "x-month12-live")
}

// BenchmarkFigure9c_SoftwareDecode regenerates the decoder-utilization
// drop when opportunistic software decode turns on (paper: 98% -> 91%).
func BenchmarkFigure9c_SoftwareDecode(b *testing.B) {
	var before, after float64
	for i := 0; i < b.N; i++ {
		s := fleetsim.Figure9cDecoderUtil(fleetsim.DefaultConfig())
		before, after = s[5].Value, s[7].Value
	}
	b.ReportMetric(before*100, "decoderUtil%-before")
	b.ReportMetric(after*100, "decoderUtil%-after")
}

// --- Figure 10 ---------------------------------------------------------------

// BenchmarkFigure10_BitrateTuning validates the rate-control tuning story
// with real encodes: the launch-tuned encoder needs more bits than the
// fully-tuned one at the same quality (the mechanism behind Figure 10's
// +12% -> -2% trajectory), and reports the modeled month-16 endpoints.
func BenchmarkFigure10_BitrateTuning(b *testing.B) {
	clip, _ := vbench.ByName("bike")
	var launchVsTuned float64
	for i := 0; i < b.N; i++ {
		tuned, err := vbench.RunRD(clip, vbench.EncoderUnderTest{
			Label: "tuned", Profile: codec.VP9Class, Hardware: true, Tuning: rc.MaxTuning}, 16, 12)
		if err != nil {
			b.Fatal(err)
		}
		launch, err := vbench.RunRD(clip, vbench.EncoderUnderTest{
			Label: "launch", Profile: codec.VP9Class, Hardware: true, Tuning: 0}, 16, 12)
		if err != nil {
			b.Fatal(err)
		}
		bd, err := metrics.BDRate(tuned.Points, launch.Points)
		if err != nil {
			b.Fatal(err)
		}
		launchVsTuned = bd
	}
	vp9, h264 := fleetsim.Figure10Bitrate(fleetsim.DefaultConfig(), 16)
	b.ReportMetric(launchVsTuned, "BDrate%-launch-vs-tuned-measured")
	b.ReportMetric(vp9[0].Value, "model%-vp9-month1")
	b.ReportMetric(vp9[len(vp9)-1].Value, "model%-vp9-month16")
	b.ReportMetric(h264[len(h264)-1].Value, "model%-h264-month16")
}

// --- Table 2 / Appendix A ------------------------------------------------------

// BenchmarkTable2_HostResources regenerates Table 2 (paper: 42+13=55
// cores, 712 Gbps total at 153 Gpix/s).
func BenchmarkTable2_HostResources(b *testing.B) {
	var rows []balance.HostRow
	for i := 0; i < b.N; i++ {
		rows = balance.Table2(vcu.DefaultParams())
	}
	total := rows[len(rows)-1]
	b.ReportMetric(total.LogicalCores, "cores-total")
	b.ReportMetric(total.DRAMGbps, "Gbps-total")
}

// BenchmarkBandwidth_SpeedsAndFeeds regenerates the §3.3.1 DRAM budget
// (paper: VCU needs 27-37 GiB/s, provides ~36 GiB/s).
func BenchmarkBandwidth_SpeedsAndFeeds(b *testing.B) {
	var needs balance.VCUBandwidth
	for i := 0; i < b.N; i++ {
		needs = balance.DRAMNeeds(vcu.DefaultParams())
	}
	b.ReportMetric(needs.ChipTypicalGiBs, "GiB/s-typical")
	b.ReportMetric(needs.ChipWorstGiBs, "GiB/s-worst")
	b.ReportMetric(needs.ProvidedGiBs, "GiB/s-provided")
}

// BenchmarkAppendixA4_DeviceMemory regenerates the device memory
// footprints (paper: ~700 MiB/MOT, ~500 MiB/SOT).
func BenchmarkAppendixA4_DeviceMemory(b *testing.B) {
	var f balance.Footprints
	for i := 0; i < b.N; i++ {
		f = balance.DeviceMemory(vcu.DefaultParams())
	}
	b.ReportMetric(f.MOTTotalMiB, "MiB-MOT")
	b.ReportMetric(f.SOTTotalMiB, "MiB-SOT")
}

// --- §4.4 failure management ---------------------------------------------------

// BenchmarkFailure_BlackHoling runs the black-holing experiment: corrupted
// videos with and without the worker-abort + golden-screening mitigation.
func BenchmarkFailure_BlackHoling(b *testing.B) {
	run := func(mitigate bool) int {
		cfg := cluster.DefaultConfig(1)
		cfg.GoldenCheckOnStart = mitigate
		cfg.AbortOnFailure = mitigate
		cfg.IntegrityCheckProb = 0.5
		// Disable the telemetry auto-disable so the benchmark isolates
		// the worker-level mitigation (the paper hit black-holing in the
		// window before fault management caught up).
		cfg.DisableFaultThreshold = 1 << 30
		c := cluster.New(cfg)
		c.Hosts[0].VCUs[0].InjectFault(vcu.FaultCorrupt, 0)
		// Uploads trickle in over time: a failing-but-fast VCU is idle
		// first when each new video arrives, so it naturally attracts a
		// disproportionate share of traffic (the black hole).
		var graphs []*cluster.Graph
		for i := 0; i < 40; i++ {
			i := i
			c.Eng.Schedule(time.Duration(i)*20*time.Second, func() {
				g := cluster.BuildGraph(cluster.VideoSpec{
					ID: i, Resolution: video.Res1080p, FPS: 30, Frames: 600, ChunkFrames: 150,
					Profile: codec.VP9Class, Mode: vcu.EncodeTwoPassOffline, MOT: true}, 10)
				graphs = append(graphs, g)
				c.Submit(g)
			})
		}
		c.Eng.RunUntil(4 * time.Hour)
		corrupted := 0
		for _, g := range graphs {
			if g.Corrupted() {
				corrupted++
			}
		}
		return corrupted
	}
	var without, with int
	for i := 0; i < b.N; i++ {
		without = run(false)
		with = run(true)
	}
	b.ReportMetric(float64(without), "corruptedVideos-unmitigated")
	b.ReportMetric(float64(with), "corruptedVideos-mitigated")
}

// --- §4.5 new capabilities -------------------------------------------------------

// BenchmarkNewCapabilities_LiveLatency compares the software chunked-
// parallel VP9 live pipeline with the single-VCU real-time path (paper:
// >10s vs ~5s end-to-end; a 2s chunk took 10s in software).
func BenchmarkNewCapabilities_LiveLatency(b *testing.B) {
	p := vcu.DefaultParams()
	var swLatency, vcuLatency float64
	for i := 0; i < b.N; i++ {
		const chunkSec = 2.0
		pixels := float64(video.Res1080p.Pixels()) * 30 * chunkSec
		// Software: 5x realtime encode cost for VP9 on CPU.
		swEncode := 10.0
		swLatency = chunkSec + swEncode
		vcuEncode := pixels / (p.RealtimeEncodePixRate * p.LowLatencyTwoPassFactor)
		vcuLatency = chunkSec + vcuEncode + 1.5
	}
	b.ReportMetric(swLatency, "s-e2e-software")
	b.ReportMetric(vcuLatency, "s-e2e-vcu")
}

// --- pure codec performance ------------------------------------------------------

// BenchmarkEncode_Profiles measures the real Go encoder's wall-clock
// speed for both profiles (the paper's VP9-is-6-8x-costlier claim shows
// up in the software encoder itself).
func BenchmarkEncode_Profiles(b *testing.B) {
	frames := video.NewSource(video.SourceConfig{
		Width: 128, Height: 72, Seed: 3, Detail: 0.5, Motion: 1.5, Objects: 1}).Frames(4)
	for _, profile := range []codec.Profile{codec.H264Class, codec.VP9Class} {
		b.Run(profile.String(), func(b *testing.B) {
			cfg := codec.Config{Profile: profile, Width: 128, Height: 72,
				RC: rc.Config{BaseQP: 32}}
			b.ReportAllocs()
			var pixels int64
			for i := 0; i < b.N; i++ {
				res, err := codec.EncodeSequence(cfg, frames)
				if err != nil {
					b.Fatal(err)
				}
				_ = res
				pixels += int64(len(frames)) * 128 * 72
			}
			b.ReportMetric(float64(pixels)/b.Elapsed().Seconds()/1e6, "Mpix/s-encode")
		})
	}
}

// BenchmarkDecode measures decoder wall-clock speed.
func BenchmarkDecode(b *testing.B) {
	frames := video.NewSource(video.SourceConfig{
		Width: 128, Height: 72, Seed: 3, Detail: 0.5, Motion: 1.5}).Frames(4)
	res, err := codec.EncodeSequence(codec.Config{Profile: codec.VP9Class,
		Width: 128, Height: 72, RC: rc.Config{BaseQP: 32}}, frames)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.DecodeSequence(res.Packets); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N*len(frames)*128*72)/b.Elapsed().Seconds()/1e6, "Mpix/s-decode")
}

func slug(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			out = append(out, r)
		case r >= 'A' && r <= 'Z':
			out = append(out, r+('a'-'A'))
		}
	}
	return string(out)
}

// BenchmarkNewCapabilities_VP9Egress runs the §4.5 "enabling otherwise-
// infeasible VP9 compression" experiment on the §2.2 popularity model:
// egress saved and VP9 watch coverage when VP9 moves from
// popular-videos-only batch CPU to at-upload MOT on VCUs.
func BenchmarkNewCapabilities_VP9Egress(b *testing.B) {
	var saving, cpuShare, vcuShare, computeRatio float64
	for i := 0; i < b.N; i++ {
		c := workload.Generate(20000, 1)
		m := workload.DefaultEgressModel()
		cpu := workload.Apply(c, workload.PolicyCPUEra, m)
		vcuEra := workload.Apply(c, workload.PolicyVCUEra, m)
		saving = workload.EgressSaving(cpu, vcuEra)
		cpuShare = cpu.VP9WatchShare
		vcuShare = vcuEra.VP9WatchShare
		computeRatio = vcuEra.TranscodeComputeUnits / cpu.TranscodeComputeUnits
	}
	b.ReportMetric(saving*100, "%-egress-saved")
	b.ReportMetric(cpuShare*100, "%-vp9-watch-cpuera")
	b.ReportMetric(vcuShare*100, "%-vp9-watch-vcuera")
	b.ReportMetric(computeRatio, "x-transcode-compute")
}
