// Quickstart: generate a synthetic clip, encode it with both codec
// profiles, decode it back, and report bitrate and PSNR — the smallest
// end-to-end tour of the public API.
package main

import (
	"fmt"
	"log"

	"openvcu"
)

func main() {
	const (
		w, h   = 320, 180
		fps    = 30
		nFrame = 12
	)
	src := openvcu.NewSource(openvcu.SourceConfig{
		Width: w, Height: h, FPS: fps, Seed: 42,
		Detail: 0.5, Motion: 1.5, Objects: 2, ObjectMotion: 2,
	})
	frames := src.Frames(nFrame)
	fmt.Printf("source: %dx%d, %d frames\n\n", w, h, nFrame)

	for _, profile := range []openvcu.Profile{openvcu.H264Class, openvcu.VP9Class} {
		res, err := openvcu.EncodeSequence(openvcu.EncoderConfig{
			Profile: profile, Width: w, Height: h, FPS: fps,
			RC: openvcu.RateControl{
				Mode:          openvcu.RCTwoPassOffline,
				TargetBitrate: 400_000,
			},
		}, frames)
		if err != nil {
			log.Fatal(err)
		}
		decoded, err := openvcu.DecodeSequence(res.Packets)
		if err != nil {
			log.Fatal(err)
		}
		bitrate := float64(res.TotalBits) * float64(fps) / float64(nFrame)
		fmt.Printf("%-6s %d packets, %7.0f bps (target 400000), PSNR %.2f dB\n",
			profile, len(res.Packets), bitrate, openvcu.SequencePSNR(frames, decoded))
	}
	fmt.Println("\nVP9-class should land near the same bitrate with higher PSNR —")
	fmt.Println("the compression-for-compute trade the paper's accelerator makes affordable.")
}
