// Failuredrill: the §4.4 failure-management story run as a drill on the
// simulated cluster. A VCU develops the worst failure mode — it keeps
// "completing" work quickly but corrupts its output — while uploads
// trickle in. The drill runs twice: once with the paper's mitigations
// disabled (watch the black hole form) and once with them enabled
// (worker aborts + golden-task screening + telemetry-driven disablement).
package main

import (
	"fmt"
	"time"

	"openvcu"
	"openvcu/internal/cluster"
	"openvcu/internal/vcu"
)

func main() {
	fmt.Println("== failure drill: one corrupting-but-fast VCU, 40 trickled uploads ==")
	for _, mitigate := range []bool{false, true} {
		stats, corrupted, touched := run(mitigate)
		label := "mitigations OFF"
		if mitigate {
			label = "mitigations ON (abort + golden screening + fault scan)"
		}
		fmt.Printf("\n-- %s --\n", label)
		fmt.Printf("videos with undetected corruption: %d/40\n", corrupted)
		fmt.Printf("videos that ever touched the bad VCU: %d/40\n", touched)
		fmt.Printf("corruptions caught by integrity checks: %d, escaped: %d\n",
			stats.CorruptionsCaught, stats.CorruptionsEscaped)
		fmt.Printf("worker aborts: %d, golden rejections: %d, VCUs disabled: %d\n",
			stats.WorkerAborts, stats.GoldenRejections, stats.VCUsDisabled)
	}
	fmt.Println("\nThe failing VCU is *faster* than healthy ones, so without the")
	fmt.Println("mitigations it attracts a disproportionate share of arriving work —")
	fmt.Println("the black-holing hazard of §4.4.")
}

func run(mitigate bool) (cluster.Stats, int, int) {
	cfg := openvcu.DefaultClusterConfig(1)
	cfg.GoldenCheckOnStart = mitigate
	cfg.AbortOnFailure = mitigate
	cfg.IntegrityCheckProb = 0.5
	if !mitigate {
		// Telemetry-based disablement off too, to show the raw hazard.
		cfg.DisableFaultThreshold = 1 << 30
	}
	c := openvcu.NewCluster(cfg)
	bad := c.Hosts[0].VCUs[0]
	bad.InjectFault(vcu.FaultCorrupt, 0)

	var graphs []*openvcu.WorkGraph
	for i := 0; i < 40; i++ {
		i := i
		c.Eng.Schedule(time.Duration(i)*20*time.Second, func() {
			g := openvcu.BuildGraph(openvcu.VideoSpec{
				ID: i, Resolution: openvcu.Res1080p, FPS: 30,
				Frames: 600, ChunkFrames: 150,
				Profile: openvcu.VP9Class, Mode: openvcu.EncodeTwoPassOffline, MOT: true,
			}, 10)
			graphs = append(graphs, g)
			c.Submit(g)
		})
	}
	c.Eng.RunUntil(4 * time.Hour)

	corrupted, touched := 0, 0
	for _, g := range graphs {
		if g.Corrupted() {
			corrupted++
		}
		hit := false
		for _, s := range g.Steps {
			for _, id := range s.RanOnVCU {
				if id == bad.ID {
					hit = true
				}
			}
		}
		if hit {
			touched++
		}
	}
	return c.Stats, corrupted, touched
}
