// Livestream: the §4.5 live-streaming story. Before acceleration, VP9 for
// a live stream meant encoding many short chunks in parallel — a 2-second
// chunk took ~10 seconds of software encode, so 5-6 chunks ran
// concurrently and end-to-end latency ballooned past 10-30 seconds. A
// single VCU transcodes the stream in real time with lagged two-pass
// encoding, enabling a ~5-second camera-to-eyeball budget.
//
// This example does both: it computes the latency arithmetic with the
// accelerator timing model, and really encodes a short "live" segment
// with the lagged two-pass rate controller to show the bounded lookahead
// in action.
package main

import (
	"fmt"
	"log"

	"openvcu"
)

func main() {
	latencyArithmetic()
	laggedEncode()
}

func latencyArithmetic() {
	p := openvcu.DefaultVCUParams()
	const (
		chunkSeconds = 2.0
		fps          = 30.0
	)
	pixelsPerChunk := float64(openvcu.Res1080p.Pixels()) * fps * chunkSeconds

	// Software: a 2s 1080p chunk took ~10s to encode in VP9 software.
	const swEncodeSecPerChunk = 10.0
	concurrent := swEncodeSecPerChunk / chunkSeconds
	swLatency := swEncodeSecPerChunk + chunkSeconds // ingest + encode of one chunk

	// VCU: one encoder core at the low-latency two-pass rate.
	vcuRate := p.RealtimeEncodePixRate * p.LowLatencyTwoPassFactor
	vcuEncodeSec := pixelsPerChunk / vcuRate
	vcuLatency := chunkSeconds + vcuEncodeSec + 1.5 // ingest + encode + packaging/CDN

	fmt.Println("== live VP9 1080p30, 2-second chunks ==")
	fmt.Printf("software: %.0fs encode per chunk -> %.0f chunks in flight, ~%.0fs+ end-to-end\n",
		swEncodeSecPerChunk, concurrent, swLatency)
	fmt.Printf("VCU:      %.1fs encode per chunk on one core -> real time, ~%.1fs end-to-end (paper: 5s)\n\n",
		vcuEncodeSec, vcuLatency)
}

func laggedEncode() {
	const (
		w, h = 256, 144
		fps  = 30
		lag  = 8
	)
	src := openvcu.NewSource(openvcu.SourceConfig{
		Width: w, Height: h, FPS: fps, Seed: 9,
		Detail: 0.5, Motion: 2, Objects: 2, ObjectMotion: 3,
	})
	frames := src.Frames(24)

	run := func(mode string, rcCfg openvcu.RateControl) {
		res, err := openvcu.EncodeSequence(openvcu.EncoderConfig{
			Profile: openvcu.VP9Class, Width: w, Height: h, FPS: fps,
			Speed: 2, RC: rcCfg,
		}, frames)
		if err != nil {
			log.Fatal(err)
		}
		dec, err := openvcu.DecodeSequence(res.Packets)
		if err != nil {
			log.Fatal(err)
		}
		bitrate := float64(res.TotalBits) * fps / float64(len(frames))
		fmt.Printf("%-22s %7.0f bps  PSNR %.2f dB\n", mode, bitrate,
			openvcu.SequencePSNR(frames, dec))
	}
	fmt.Println("== lagged two-pass vs one-pass on a live segment (real encodes) ==")
	run("one-pass low-latency", openvcu.RateControl{
		Mode: openvcu.RCOnePass, TargetBitrate: 300_000})
	run("lagged two-pass", openvcu.RateControl{
		Mode: openvcu.RCTwoPassLagged, TargetBitrate: 300_000, LagFrames: lag})
	fmt.Printf("\nlagged mode sees %d frames (%.0f ms) ahead: bounded latency, better bit allocation.\n",
		lag, 1000.0*lag/fps)
}
