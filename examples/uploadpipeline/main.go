// Uploadpipeline: the YouTube upload path of paper Fig. 1/2b. Part one
// really transcodes a clip — chunked into closed GOPs, each chunk MOT'd
// to a two-rung ladder in parallel, streams assembled and verified.
// Part two submits a batch of upload videos to the simulated cluster
// control plane and reports how the scheduler spread the chunks over
// VCUs.
package main

import (
	"fmt"
	"log"
	"time"

	"openvcu"
)

func main() {
	realTranscode()
	clusterRun()
}

func realTranscode() {
	const w, h, fps = 256, 144, 30
	src := openvcu.NewSource(openvcu.SourceConfig{
		Width: w, Height: h, FPS: fps, Seed: 7,
		Detail: 0.5, Motion: 1, Objects: 1, ObjectMotion: 2,
	})
	frames := src.Frames(16)
	chunks := openvcu.SplitChunks(frames, 8) // two closed GOPs

	specs := []openvcu.OutputSpec{
		{Name: "144p", Resolution: openvcu.Resolution{Name: "144p", Width: 256, Height: 144},
			Profile: openvcu.VP9Class, Hardware: true, Speed: 2,
			RC: openvcu.RateControl{Mode: openvcu.RCTwoPassOffline, TargetBitrate: 250_000}},
		{Name: "72p", Resolution: openvcu.Resolution{Name: "72p", Width: 128, Height: 72},
			Profile: openvcu.VP9Class, Hardware: true, Speed: 2,
			RC: openvcu.RateControl{Mode: openvcu.RCTwoPassOffline, TargetBitrate: 80_000}},
	}
	res, err := openvcu.ChunkedTranscode(chunks, fps, specs, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== chunked MOT transcode (real encodes) ==")
	for _, out := range res.Outputs {
		decoded, err := openvcu.DecodeSequence(out.Packets)
		if err != nil {
			log.Fatalf("assembled %s stream broken: %v", out.Spec.Name, err)
		}
		ref := make([]*openvcu.Frame, len(frames))
		for i, f := range frames {
			ref[i] = openvcu.Scale(f, out.Spec.Resolution.Width, out.Spec.Resolution.Height)
		}
		fmt.Printf("%-5s %2d chunks -> %2d frames, %6d bytes, PSNR %.2f dB\n",
			out.Spec.Name, len(chunks), len(decoded), out.TotalBits/8,
			openvcu.SequencePSNR(ref, decoded))
	}
}

func clusterRun() {
	c := openvcu.NewCluster(openvcu.DefaultClusterConfig(1))
	const videos = 6
	done := 0
	var graphs []*openvcu.WorkGraph
	for i := 0; i < videos; i++ {
		g := openvcu.BuildGraph(openvcu.VideoSpec{
			ID: i, Resolution: openvcu.Res1080p, FPS: 30,
			Frames: 600, ChunkFrames: 150,
			Profile: openvcu.VP9Class, Mode: openvcu.EncodeTwoPassOffline, MOT: true,
		}, 10)
		g.OnDone = func(*openvcu.WorkGraph) { done++ }
		graphs = append(graphs, g)
		c.Submit(g)
	}
	c.Eng.RunUntil(15 * time.Minute)

	used := map[int]bool{}
	for _, g := range graphs {
		for _, s := range g.Steps {
			for _, v := range s.RanOnVCU {
				used[v] = true
			}
		}
	}
	fmt.Println("\n== cluster control plane (simulated, 1 host / 20 VCUs) ==")
	fmt.Printf("videos completed: %d/%d  steps: %d  retries: %d  VCUs touched: %d\n",
		done, videos, c.Stats.StepsCompleted, c.Stats.Retries, len(used))
}
