// Cloudgaming: the Stadia use case of §4.5 — "extremely low encoding
// latency at high resolution, high framerates, and excellent visual
// fidelity", using low-latency two-pass VP9 to deliver 4K 60 FPS on
// 35 Mbps connections.
//
// The example checks the per-frame encode deadline against the VCU
// timing model (a 4K60 frame must encode in under 16.7 ms) and then runs
// a real low-latency encode of a game-like synthetic clip, reporting the
// frame-size stability that a streaming rate controller must deliver.
package main

import (
	"fmt"
	"log"

	"openvcu"
)

func main() {
	deadlines()
	realEncode()
}

func deadlines() {
	p := openvcu.DefaultVCUParams()
	fmt.Println("== per-frame deadline check (VCU timing model) ==")
	for _, tc := range []struct {
		res openvcu.Resolution
		fps float64
	}{
		{openvcu.Res1080p, 60},
		{openvcu.Res1440p, 60},
		{openvcu.Res2160p, 60},
	} {
		deadlineMs := 1000.0 / tc.fps
		rate := p.RealtimeEncodePixRate * p.LowLatencyTwoPassFactor
		encodeMs := float64(tc.res.Pixels()) / rate * 1000
		// When one core cannot make the deadline, the stream is split
		// into tile columns across cores (the VCU has 10).
		cores := 1
		for float64(cores)*deadlineMs < encodeMs {
			cores++
		}
		fmt.Printf("%-6s @ %2.0f FPS: %5.1f ms/frame on one core vs %4.1f ms budget -> %d core(s)\n",
			tc.res.Name, tc.fps, encodeMs, deadlineMs, cores)
	}
	// Bitrate sanity: 4K60 VP9 at Stadia's 35 Mbps is ~0.07 bpp.
	bpp := 35e6 / (float64(openvcu.Res2160p.Pixels()) * 60)
	fmt.Printf("4K60 at 35 Mbps = %.3f bits/pixel\n\n", bpp)
}

func realEncode() {
	const (
		w, h = 320, 180
		fps  = 60
	)
	src := openvcu.NewSource(openvcu.SourceConfig{
		Width: w, Height: h, FPS: fps, Seed: 77,
		Detail: 0.6, Motion: 4, Objects: 3, ObjectMotion: 5, // fast game motion
	})
	frames := src.Frames(30)
	target := 500_000
	res, err := openvcu.EncodeSequence(openvcu.EncoderConfig{
		Profile: openvcu.VP9Class, Width: w, Height: h, FPS: fps,
		Speed: 2,
		RC: openvcu.RateControl{
			Mode:          openvcu.RCTwoPassLowLatency,
			TargetBitrate: target,
		},
	}, frames)
	if err != nil {
		log.Fatal(err)
	}
	dec, err := openvcu.DecodeSequence(res.Packets)
	if err != nil {
		log.Fatal(err)
	}
	var maxBits, sumBits int
	for _, pkt := range res.Packets[1:] { // skip the keyframe
		if pkt.Bits() > maxBits {
			maxBits = pkt.Bits()
		}
		sumBits += pkt.Bits()
	}
	avg := sumBits / (len(res.Packets) - 1)
	fmt.Println("== real low-latency two-pass encode, game-like content ==")
	fmt.Printf("bitrate %7.0f bps (target %d), PSNR %.2f dB\n",
		float64(res.TotalBits)*fps/float64(len(frames)), target,
		openvcu.SequencePSNR(frames, dec))
	fmt.Printf("inter-frame sizes: avg %d bits, max %d bits (max/avg %.1fx — bounded bursts keep latency flat)\n",
		avg, maxBits, float64(maxBits)/float64(avg))
}
