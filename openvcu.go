// Package openvcu is an open reproduction of "Warehouse-Scale Video
// Acceleration: Co-design and Deployment in the Wild" (ASPLOS 2021): a
// complete software video codec with H.264-class and VP9-class profiles,
// the transcoding pipelines (SOT/MOT, chunked parallel processing), a
// discrete-event model of the VCU accelerator and its hosts, the
// multi-dimensional bin-packing work scheduler, a cluster control plane
// with the paper's failure-management mechanisms, and the analytic
// system-balance models — everything needed to regenerate the paper's
// tables and figures.
//
// This file is the public facade: it re-exports the library's primary
// types and entry points so applications depend on a single import path.
// The implementation lives in internal/ packages, one per subsystem (see
// DESIGN.md for the inventory).
//
// Quick start:
//
//	src := openvcu.NewSource(openvcu.SourceConfig{Width: 640, Height: 360, Seed: 1, Detail: 0.5, Motion: 2})
//	frames := src.Frames(30)
//	res, err := openvcu.EncodeSequence(openvcu.EncoderConfig{
//	    Profile: openvcu.VP9Class, Width: 640, Height: 360,
//	    RC: openvcu.RateControl{Mode: openvcu.RCTwoPassOffline, TargetBitrate: 800_000},
//	}, frames)
//	decoded, err := openvcu.DecodeSequence(res.Packets)
package openvcu

import (
	"openvcu/internal/balance"
	"openvcu/internal/cluster"
	"openvcu/internal/codec"
	"openvcu/internal/codec/rc"
	"openvcu/internal/container"
	"openvcu/internal/fleetsim"
	"openvcu/internal/metrics"
	"openvcu/internal/sched"
	"openvcu/internal/tco"
	"openvcu/internal/transcode"
	"openvcu/internal/vbench"
	"openvcu/internal/vcu"
	"openvcu/internal/video"
	"openvcu/internal/workload"
)

// --- raw video ---------------------------------------------------------------

// Frame is an 8-bit YUV 4:2:0 picture.
type Frame = video.Frame

// Resolution is a named point on the 16:9 output ladder.
type Resolution = video.Resolution

// The standard output ladder (paper footnote 1).
var (
	Res144p  = video.Res144p
	Res240p  = video.Res240p
	Res360p  = video.Res360p
	Res480p  = video.Res480p
	Res720p  = video.Res720p
	Res1080p = video.Res1080p
	Res1440p = video.Res1440p
	Res2160p = video.Res2160p
)

// SourceConfig describes a deterministic procedural test clip.
type SourceConfig = video.SourceConfig

// Source generates procedural video frames.
type Source = video.Source

// NewSource builds a procedural video source.
func NewSource(cfg SourceConfig) *Source { return video.NewSource(cfg) }

// NewFrame allocates a zeroed frame.
func NewFrame(w, h int) *Frame { return video.NewFrame(w, h) }

// Scale resamples a frame.
func Scale(f *Frame, w, h int) *Frame { return video.Scale(f, w, h) }

// SequencePSNR returns the pooled PSNR between two frame sequences.
func SequencePSNR(a, b []*Frame) float64 { return video.SequencePSNR(a, b) }

// LadderBelow returns the MOT output set for an input resolution.
func LadderBelow(in Resolution) []Resolution { return video.LadderBelow(in) }

// --- codec -------------------------------------------------------------------

// Profile selects the coding toolset.
type Profile = codec.Profile

// Codec profiles: the paper's two formats plus the §6 future-work AV1
// extension (software only — the VCU predates AV1).
const (
	H264Class = codec.H264Class
	VP9Class  = codec.VP9Class
	AV1Class  = codec.AV1Class
)

// EncoderConfig parameterizes an encoder.
type EncoderConfig = codec.Config

// Packet is one encoded frame.
type Packet = codec.Packet

// Encoder is a streaming video encoder.
type Encoder = codec.Encoder

// Decoder is a streaming video decoder.
type Decoder = codec.Decoder

// SequenceResult is the outcome of EncodeSequence.
type SequenceResult = codec.SequenceResult

// NewEncoder returns a streaming encoder.
func NewEncoder(cfg EncoderConfig) (*Encoder, error) { return codec.NewEncoder(cfg) }

// NewDecoder returns a streaming decoder.
func NewDecoder() *Decoder { return codec.NewDecoder() }

// EncodeSequence encodes frames end to end (running a first pass when the
// rate-control mode needs one).
func EncodeSequence(cfg EncoderConfig, frames []*Frame) (*SequenceResult, error) {
	return codec.EncodeSequence(cfg, frames)
}

// DecodeSequence decodes packets to display frames.
func DecodeSequence(pkts []Packet) ([]*Frame, error) { return codec.DecodeSequence(pkts) }

// RateControl configures encoder rate control.
type RateControl = rc.Config

// Rate-control modes (paper §2.1).
const (
	RCConstQP           = rc.ModeConstQP
	RCOnePass           = rc.ModeOnePass
	RCTwoPassLowLatency = rc.ModeTwoPassLowLatency
	RCTwoPassLagged     = rc.ModeTwoPassLagged
	RCTwoPassOffline    = rc.ModeTwoPassOffline
)

// --- container ---------------------------------------------------------------

// StreamInfo is the container stream header.
type StreamInfo = container.StreamInfo

// StreamWriter writes the OVCU container format.
type StreamWriter = container.Writer

// StreamReader reads the OVCU container format.
type StreamReader = container.Reader

// --- transcoding -------------------------------------------------------------

// OutputSpec describes one transcode output variant.
type OutputSpec = transcode.OutputSpec

// TranscodeResult aggregates a transcode task's outputs.
type TranscodeResult = transcode.Result

// MOT transcodes frames into every output with one shared decode
// (paper Fig. 2b).
func MOT(frames []*Frame, fps int, specs []OutputSpec) (*TranscodeResult, error) {
	return transcode.MOT(frames, fps, specs)
}

// SOT transcodes frames into a single output (paper Fig. 2a).
func SOT(frames []*Frame, fps int, spec OutputSpec) (*TranscodeResult, error) {
	return transcode.SOT(frames, fps, spec)
}

// Chunk is a closed GOP of source frames.
type Chunk = transcode.Chunk

// SplitChunks shards frames into closed GOPs for parallel processing.
func SplitChunks(frames []*Frame, gopLen int) []Chunk { return transcode.SplitChunks(frames, gopLen) }

// ChunkedTranscode runs a MOT per chunk in parallel and assembles
// playable per-output streams.
func ChunkedTranscode(chunks []Chunk, fps int, specs []OutputSpec, parallelism int) (*transcode.ChunkedResult, error) {
	return transcode.Chunked(chunks, fps, specs, parallelism)
}

// LadderSpecs builds the standard MOT output ladder for an input.
func LadderSpecs(in Resolution, p Profile, bitsPerPixel float64, fps int, hardware bool) []OutputSpec {
	return transcode.LadderSpecs(in, p, bitsPerPixel, fps, hardware)
}

// --- accelerator model ---------------------------------------------------------

// VCUParams are the chip/board/host calibration constants.
type VCUParams = vcu.Params

// DefaultVCUParams returns the production configuration (10 encoder
// cores, 3 decoder cores, 36 GiB/s DRAM, 20 VCUs/host).
func DefaultVCUParams() VCUParams { return vcu.DefaultParams() }

// VCUWorkload describes a saturated throughput experiment.
type VCUWorkload = vcu.Workload

// Workload and encode modes.
const (
	WorkloadSOT = vcu.ModeSOT
	WorkloadMOT = vcu.ModeMOT

	EncodeOnePassLowLatency = vcu.EncodeOnePassLowLatency
	EncodeTwoPassLowLatency = vcu.EncodeTwoPassLowLatency
	EncodeTwoPassLagged     = vcu.EncodeTwoPassLagged
	EncodeTwoPassOffline    = vcu.EncodeTwoPassOffline
)

// --- scheduler & cluster -------------------------------------------------------

// StepRequest describes one transcoding step for the scheduler.
type StepRequest = sched.StepRequest

// ClusterConfig parameterizes a simulated cluster.
type ClusterConfig = cluster.Config

// Cluster is a simulated data center cell.
type Cluster = cluster.Cluster

// VideoSpec describes one uploaded video.
type VideoSpec = cluster.VideoSpec

// WorkGraph is a video's acyclic task dependency graph.
type WorkGraph = cluster.Graph

// Region is a set of clusters with global overflow routing (§2.2: videos
// process near the uploader unless local capacity is unavailable).
type Region = cluster.Region

// NewRegion builds n clusters sharing one simulation clock.
func NewRegion(cfg ClusterConfig, n int) *Region { return cluster.NewRegion(cfg, n) }

// NewCluster builds a simulated cluster.
func NewCluster(cfg ClusterConfig) *Cluster { return cluster.New(cfg) }

// DefaultClusterConfig returns a production-like configuration with all
// §4.4 failure mitigations enabled.
func DefaultClusterConfig(hosts int) ClusterConfig { return cluster.DefaultConfig(hosts) }

// BuildGraph expands a video into its work graph.
func BuildGraph(spec VideoSpec, stepTargetSeconds float64) *cluster.Graph {
	return cluster.BuildGraph(spec, stepTargetSeconds)
}

// OverloadConfig arms the cluster's overload controls: bounded
// admission with priority shedding, live deadline drops, the brownout
// degradation ladder and the load-aware hedge guard. The zero value
// disables all of them.
type OverloadConfig = cluster.OverloadConfig

// ClassStats is one priority class's goodput/SLO bucket.
type ClassStats = cluster.ClassStats

// DefaultOverloadConfig returns production-like overload settings.
func DefaultOverloadConfig() OverloadConfig { return cluster.DefaultOverloadConfig() }

// AutoscaleConfig arms the closed-loop capacity controller: an
// M/M/1/k-fitted sizing model actuating drain-before-remove park
// resizes under hysteresis bands and a priority protocol against the
// brownout ladder. The zero value disables it.
type AutoscaleConfig = cluster.AutoscaleConfig

// AutoscaleStats counts capacity-controller outcomes (resizes, drains,
// cold starts, conflict ticks, the cost integral).
type AutoscaleStats = cluster.AutoscaleStats

// DefaultAutoscaleConfig returns production-like control settings.
func DefaultAutoscaleConfig() AutoscaleConfig { return cluster.DefaultAutoscaleConfig() }

// AuditConfig arms the online output auditor: a budgeted fraction of
// completed steps is re-verified after the fact, sampling biased toward
// low-trust devices, with a demote → convict → soak ladder and
// taint-window recall for devices whose output fails re-verification.
// The zero value disables auditing.
type AuditConfig = cluster.AuditConfig

// AuditStats counts auditor outcomes (audits, corruptions caught and
// escaped, recalls, demotions, convictions, soak results).
type AuditStats = cluster.AuditStats

// DefaultAuditConfig returns production-like audit settings (5% of
// completions re-verified).
func DefaultAuditConfig() AuditConfig { return cluster.DefaultAuditConfig() }

// DegradeLevel is a rung of the brownout degradation ladder.
type DegradeLevel = transcode.DegradeLevel

// Brownout degradation levels, mildest first.
const (
	DegradeNone    = transcode.DegradeNone
	DegradeTrim    = transcode.DegradeTrim
	DegradeProfile = transcode.DegradeProfile
	DegradeFloor   = transcode.DegradeFloor
)

// --- evaluation ---------------------------------------------------------------

// RDPoint is one rate/quality operating point.
type RDPoint = metrics.RDPoint

// BDRate returns the Bjøntegaard-delta bitrate of test vs ref in percent.
func BDRate(ref, test []RDPoint) (float64, error) { return metrics.BDRate(ref, test) }

// VbenchClip is one entry of the synthetic vbench suite.
type VbenchClip = vbench.Clip

// VbenchSuite is the 15-clip suite of §4.1.
func VbenchSuite() []VbenchClip { return vbench.Suite }

// Table1 regenerates the paper's Table 1 (see internal/tco).
var Table1 = tco.Table1

// DefaultTCOConstants returns the calibrated TCO/power constants.
func DefaultTCOConstants() tco.Constants { return tco.DefaultConstants() }

// Balance model entry points (Appendix A).
var (
	BalanceNetwork      = balance.Network
	BalanceTable2       = balance.Table2
	BalanceDRAMNeeds    = balance.DRAMNeeds
	BalanceDeviceMemory = balance.DeviceMemory
)

// VideoCorpus is a popularity-modeled video population (§2.2: stretched
// power law, three treatment buckets).
type VideoCorpus = workload.Corpus

// GenerateCorpus builds an n-video corpus.
func GenerateCorpus(n int, seed uint64) *VideoCorpus { return workload.Generate(n, seed) }

// VP9 treatment policies for the §4.5 egress experiment.
const (
	PolicyCPUEra = workload.PolicyCPUEra
	PolicyVCUEra = workload.PolicyVCUEra
)

// ApplyPolicy evaluates a VP9 treatment policy over a corpus.
var ApplyPolicy = workload.Apply

// DefaultEgressModel returns the serving-side constants.
func DefaultEgressModel() workload.EgressModel { return workload.DefaultEgressModel() }

// ArrivalConfig parameterizes the seeded demand process: a diurnal
// sinusoid with an optional spike window, thinned-Poisson sampled.
type ArrivalConfig = workload.ArrivalConfig

// Arrival is one video arriving at the platform.
type Arrival = workload.Arrival

// GenerateArrivals produces a deterministic arrival trace (no wall
// clock: same config, same trace).
func GenerateArrivals(cfg ArrivalConfig) []Arrival { return workload.GenerateArrivals(cfg) }

// FleetConfig parameterizes the longitudinal deployment simulator.
type FleetConfig = fleetsim.Config

// DefaultFleetConfig covers the 12-month window of Figure 9.
func DefaultFleetConfig() FleetConfig { return fleetsim.DefaultConfig() }
